// Delta-complete satisfiability via interval constraint propagation and
// branch-and-prune — the decision procedure at the core of dReal (Gao, Kong,
// Clarke, CADE 2013), reimplemented over this repo's expression tapes.
//
// Semantics, matching the paper's use of dReal:
//   * kUnsat     — the formula has no solution in the queried box. Sound:
//                  backed entirely by outward-rounded interval arithmetic.
//   * kDeltaSat  — the delta-weakened formula is satisfiable; a model
//                  (point) is returned. The model may fail the *unweakened*
//                  formula — callers must validate it (Algorithm 1's
//                  valid(x)), and an invalid model is the paper's
//                  "inconclusive" outcome.
//   * kTimeout   — the resource budget (node expansions and/or wall clock)
//                  was exhausted, mirroring the paper's 2-hour dReal limit.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "expr/bool_expr.h"
#include "expr/interval_backward_batch.h"
#include "solver/box.h"
#include "solver/contractor.h"
#include "support/stopwatch.h"

namespace xcv::cache {
class VerdictCache;
}  // namespace xcv::cache

namespace xcv::solver {

/// Tuning knobs for one CheckSat call.
struct SolverOptions {
  /// Precision: boxes whose widest side is ≤ delta stop splitting and are
  /// reported delta-sat (with their midpoint as the model).
  double delta = 1e-3;
  /// Branch-and-prune node budget; exceeded → kTimeout. This is the
  /// deterministic analogue of the paper's wall-clock solver timeout.
  std::uint64_t max_nodes = 200'000;
  /// Optional wall-clock budget in seconds (infinity = unlimited).
  double time_budget_seconds = std::numeric_limits<double>::infinity();
  /// HC4 fixpoint rounds per node (0 disables contraction — the ablation
  /// baseline of pure branch-and-prune).
  int contraction_rounds = 2;
  /// When a delta-box's midpoint fails exact validation, keep searching for
  /// a genuinely satisfying box up to this many rejections before reporting
  /// the (invalid) delta-sat model. 0 reproduces plain dReal behaviour
  /// (return the first delta-sat candidate).
  int max_invalid_models = 32;
  /// Before branch-and-prune, probe a deterministic lattice of this many
  /// points; a point that exactly satisfies the formula is returned as a
  /// (genuine) model immediately. Sound — candidates are validated with
  /// exact evaluation — and decouples counterexample discovery from the
  /// delta-resolution crawl. 0 disables.
  int presample_points = 225;
  /// Up to this many open sibling boxes are classified per batched interval
  /// sweep (the SoA wave): when the solver pops a box whose atoms are not
  /// yet classified, it speculatively classifies it together with the other
  /// unclassified boxes nearest the top of the stack, one
  /// EvalTapeIntervalBatch dispatch per atom. Purely an evaluation-batching
  /// knob: verdicts, models, and stats are byte-identical at every width
  /// (the batched kernels are bit-identical to the scalar evaluator and the
  /// DFS order never changes). 1 degenerates to scalar classification.
  int wave_width = 8;
  /// Optional persistent verdict cache (src/cache/). When set, Check
  /// consults it before any solver work — an exact (formula, options, box)
  /// hit replays the recorded result with from_cache set — and records its
  /// own reproducible verdicts (UNSAT, delta-sat, node-budget timeouts;
  /// never wall-clock timeouts). Non-owning; never serialized. The cache
  /// only skips work: a cache-less rerun of a deterministic run produces
  /// byte-identical results.
  cache::VerdictCache* cache = nullptr;
  /// Extra word folded into the cache scope hash. Campaigns salt with the
  /// condition id so cache keys spell out (functional tape, condition,
  /// options, box) even if two conditions compiled to equal tapes.
  std::uint64_t cache_salt = 0;
  /// Collect per-phase timings (forward wave classification vs backward
  /// contraction) into SolverStats. Purely observational — deliberately
  /// excluded from the cache scope hash, like wave_width — and off by
  /// default to keep clock reads out of the hot loop.
  bool measure_phases = false;
};

enum class SatKind { kUnsat, kDeltaSat, kTimeout };

std::string SatKindName(SatKind kind);

struct SolverStats {
  std::uint64_t nodes = 0;         // boxes popped
  std::uint64_t contractions = 0;  // HC4 passes executed
  std::uint64_t prunes = 0;        // boxes discarded by certainty/emptiness
  double seconds = 0.0;
  // Phase split, populated only when SolverOptions::measure_phases is set
  // (forward wave sweeps vs backward contraction incl. arena replay).
  double classify_seconds = 0.0;
  double contract_seconds = 0.0;
};

struct CheckResult {
  SatKind kind = SatKind::kTimeout;
  /// Witness point for kDeltaSat (midpoint of the terminal box).
  std::vector<double> model;
  /// Terminal box for kDeltaSat.
  Box model_box;
  SolverStats stats;
  /// True when the result was replayed from the verdict cache (stats.nodes
  /// then reports the recorded cold-run node count; no solver work ran).
  bool from_cache = false;
};

/// Decision engine for one fixed formula, reusable across many boxes (the
/// verifier calls Check once per subdomain). Not thread-safe; create one
/// instance per worker thread.
class DeltaSolver {
 public:
  /// `formula` is an NNF BoolExpr (True/False/atoms/and/or).
  DeltaSolver(expr::BoolExpr formula, SolverOptions options);

  /// Decides `formula` over `domain`, consulting the verdict cache when one
  /// is configured.
  CheckResult Check(const Box& domain) { return Check(domain, true); }

  /// Check with explicit cache control: consult_cache=false forces a full
  /// solve (used after a cache hit fails revalidation; the fresh result
  /// overwrites the bad entry).
  CheckResult Check(const Box& domain, bool consult_cache);

  const expr::BoolExpr& formula() const { return formula_; }
  const SolverOptions& options() const { return options_; }

  /// Scope half of the verdict-cache key: canonical tape fingerprints of
  /// every atom + skeleton shape + verdict-affecting options + cache_salt.
  /// wave_width is deliberately excluded (batching never changes verdicts).
  std::uint64_t cache_scope() const { return cache_scope_; }

  /// Validates a model against the exact (unweakened) formula using IEEE
  /// double evaluation — Algorithm 1's valid(x).
  bool ValidateModel(std::span<const double> model) const;

  /// Classifies the formula skeleton over `boxes` with one batched interval
  /// sweep per atom (EvalTapeIntervalBatch): out[k] is +1 when the formula
  /// certainly holds at every point of box k, -1 when it certainly holds
  /// nowhere in box k, 0 when interval evaluation cannot decide. This is
  /// the engine's cache-hit revalidation primitive — one sweep covers a
  /// whole wave of cached frontier boxes.
  void ClassifyBoxes(std::span<const Box> boxes, std::vector<int>& out);

 private:
  // Formula skeleton over atom indices (atoms deduplicated by expression
  // identity + relation).
  struct FNode {
    expr::BoolExpr::Kind kind;
    int atom = -1;
    std::vector<FNode> children;
  };
  enum class Tri { kTrue, kFalse, kUnknown };

  FNode CompileFormula(const expr::BoolExpr& b);
  Tri EvaluateSkeleton(const FNode& node,
                       const std::vector<Tri>& atom_status) const;
  /// Exact truth of the skeleton given per-atom IEEE truth values —
  /// equivalent to expr::EvalBool on the original formula.
  bool EvaluateSkeletonExact(const FNode& node,
                             const std::vector<char>& atom_truth) const;
  void CollectRequiredAtoms(const FNode& node, std::vector<int>& out) const;
  /// Presample lattice probing, batched over the atom tapes. Returns true
  /// and fills `result` when a genuine model was found.
  bool PresampleLattice(const Box& domain, CheckResult& result);

  /// Scope half of the cache key (see cache_scope()); computed once in the
  /// constructor from the contractor tapes, skeleton, and options.
  std::uint64_t ComputeCacheScope() const;

  /// Records `result` for `domain` in the verdict cache when configured and
  /// when the result is reproducible (see SolverOptions::cache).
  /// `deadline_stopped` marks results produced because the wall clock — not
  /// the deterministic node budget — expired; those are never recorded.
  void MaybeRecord(const Box& domain, const CheckResult& result,
                   bool deadline_stopped) const;

  /// Allocates a frontier slot holding `tmp_box_` and marks it
  /// unclassified (sizing the per-slot side arrays as needed).
  BoxStore::Ref NewNodeFromTmp();
  /// Classifies `popped` plus up to wave_width-1 other unclassified stack
  /// boxes, then speculatively expands the subtree below them breadth-first
  /// — DFS alone only ever exposes a couple of unclassified siblings, which
  /// would starve the wide lanes. Each level runs ClassifyContractWave
  /// (batched classify + full HC4 fixpoint precompute); because the
  /// fixpoint yields every surviving lane's final contracted box, the split
  /// the pop will perform is known now, so ExpandWaveChildren materializes
  /// the two halves and they become the next level's wave, doubling until
  /// the level outgrows wave_width (total work per call is capped at
  /// ~2×wave_width lanes). Pops later walk this prebuilt subtree in the
  /// exact scalar order; verdicts, boxes, and stats are bit-identical to
  /// the scalar path at every wave width and ISA tier — speculation past an
  /// early return only costs wall time.
  void ClassifyWave(BoxStore::Ref popped);
  /// One batched pass over wave_refs_ (≤ wave_width lanes): forward
  /// classification sweeps per atom into status_arena_, then the complete
  /// rounds × required-atoms HC4 fixpoint loop over every skeleton-undecided
  /// lane — batched forward + backward sweeps with per-lane masks
  /// replicating the scalar loop's empty/fixpoint early exits — scattering
  /// each lane's final box, emptiness, and contraction-call count into the
  /// ref-indexed bwd_* arenas replayed at pop.
  void ClassifyContractWave();
  /// Pre-splits the surviving lanes of the wave just contracted (skeleton
  /// undecided, not proved empty, wider than delta): bisects each lane's
  /// final box on its widest dimension exactly as pop step 4 will, allocates
  /// the two child slots, records them in child_arena_, and collects them
  /// into next_refs_ as the next expansion level.
  void ExpandWaveChildren();

  expr::BoolExpr formula_;
  SolverOptions options_;
  std::uint64_t cache_scope_ = 0;
  FNode skeleton_;
  std::vector<AtomContractor> contractors_;  // one per distinct atom
  std::vector<int> required_atoms_;  // atoms on every conjunctive path
  std::vector<char> is_required_;    // atom index -> on a conjunctive path
  expr::TapeScratch scratch_;

  // Pooled branch-and-prune frontier: one BoxStore slot per open box, the
  // stack holds slot refs, and the per-slot side arrays carry the wave
  // classifier's results to the (possibly much later) pop.
  BoxStore store_;
  std::vector<BoxStore::Ref> stack_;
  std::vector<char> classified_;   // slot -> atoms classified?
  std::vector<char> status_arena_; // slot * num_atoms + atom -> Status
  std::vector<Interval> tmp_box_;  // bisect staging
  // Speculatively materialized split: slot*2 -> {left, right} child refs
  // (-1 = not expanded; pop step 4 then bisects on the spot).
  std::vector<BoxStore::Ref> child_arena_;

  // Wave classification buffers (sized once per Check).
  std::vector<BoxStore::Ref> wave_refs_;
  std::vector<BoxStore::Ref> next_refs_;  // children feeding the next level
  std::vector<double> wave_lo_, wave_hi_;          // dims × wave_width SoA
  std::vector<const double*> wave_lo_ptrs_, wave_hi_ptrs_;
  expr::TapeIntervalBatchScratch interval_batch_;

  // ClassifyBoxes SoA buffers (grown monotonically; warm cache replays run
  // one revalidation sweep per wave, so this is a hot path too).
  std::vector<double> reval_lo_, reval_hi_;
  std::vector<const double*> reval_lo_ptrs_, reval_hi_ptrs_;
  std::vector<char> reval_status_;       // box * atoms + atom
  std::vector<Tri> reval_atom_status_;   // per-box skeleton inputs

  // Batched backward contraction over the wave: ClassifyWave runs the whole
  // HC4 fixpoint loop (rounds × required atoms, forward + backward sweeps)
  // over every undecided lane at once, with per-lane empty/fixpoint masks
  // replicating the scalar loop's control flow exactly. Required atoms get
  // their own forward scratch so their classification sweeps double as the
  // round-0 forward enclosures; the final per-lane box, emptiness, and
  // contraction-call count land in ref-indexed arenas and are replayed when
  // the box is popped.
  std::vector<expr::TapeIntervalBatchScratch> req_batch_;  // per required atom
  expr::TapeBackwardBatchScratch backward_;
  std::vector<double> bwd_lo_, bwd_hi_;  // dims × wave_width working boxes
  std::vector<double*> bwd_lo_ptrs_, bwd_hi_ptrs_;
  std::vector<const double*> bwd_clo_ptrs_, bwd_chi_ptrs_;  // same rows
  std::vector<unsigned char> wave_active_;  // lane takes this atom's sweep
  std::vector<unsigned char> wave_any_;     // lane contracted this round
  std::vector<unsigned char> wave_done_;    // lane left the fixpoint loop
  std::vector<unsigned char> wave_empty_;   // lane's box proved infeasible
  std::vector<unsigned char> wave_unknown_; // lane skeleton-undecided
  std::vector<std::uint32_t> wave_count_;   // contraction calls per lane
  std::vector<signed char> wave_outcome_;   // per-lane backward outcome
  std::vector<Tri> wave_atom_status_;       // per-lane skeleton inputs
  std::vector<char> bwd_valid_;             // slot -> arena replay available
  std::vector<signed char> bwd_empty_arena_;     // slot -> went empty
  std::vector<std::uint32_t> bwd_count_arena_;   // slot -> contraction calls
  std::vector<double> bwd_box_arena_;  // slot × dims × {lo, hi} final box
  SolverStats* phase_stats_ = nullptr;  // Check's stats, for measure_phases

  // Reusable presample buffers (Check runs once per verifier subdomain; the
  // lattice is rebuilt but never reallocated).
  struct PresampleBuffers {
    std::vector<std::vector<double>> coords;  // SoA lattice, one row per dim
    std::vector<std::vector<double>> values;  // one row per atom
    expr::TapeBatchScratch batch;
  };
  PresampleBuffers presample_;
};

}  // namespace xcv::solver
