#include "solver/contractor.h"

#include <cmath>

#include "expr/optimize.h"
#include "interval/inverse.h"
#include "support/check.h"

namespace xcv::solver {

namespace {

using expr::Instr;
using expr::Op;
using expr::Rel;

constexpr double kInf = std::numeric_limits<double>::infinity();

// The inverse-projection helpers (OddRoot, TanRestricted, AtanhRestricted)
// live in interval/inverse.{h,cpp}, shared with the batched backward kernel.

}  // namespace

AtomContractor::AtomContractor(const expr::BoolExpr& atom)
    : AtomContractor(atom.atom(), atom.rel()) {
  // Delegating constructor does the work; kind checked by atom().
}

AtomContractor::AtomContractor(expr::Expr e, expr::Rel rel)
    : expr_(std::move(e)), rel_(rel), tape_(expr::CompileOptimized(expr_)) {}

Interval AtomContractor::Evaluate(std::span<const Interval> box,
                                  expr::TapeScratch& scratch) const {
  return expr::EvalTapeInterval(tape_, box, scratch);
}

AtomContractor::Status AtomContractor::ClassifyRoot(
    const Interval& v) const {
  if (v.IsEmpty()) return Status::kCertainlyFalse;  // nowhere defined
  if (rel_ == Rel::kLe) {
    if (v.hi() <= 0.0) return Status::kCertainlyTrue;
    if (v.lo() > 0.0) return Status::kCertainlyFalse;
  } else {
    if (v.hi() < 0.0) return Status::kCertainlyTrue;
    if (v.lo() >= 0.0) return Status::kCertainlyFalse;
  }
  return Status::kUnknown;
}

ContractOutcome AtomContractor::Contract(std::span<Interval> box,
                                         expr::TapeScratch& scratch) const {
  expr::EvalTapeIntervalForward(tape_, box, scratch);
  return ContractFromForward(box, scratch.intervals);
}

ContractOutcome AtomContractor::ContractFromForward(
    std::span<Interval> box, std::vector<Interval>& v) const {
  const Interval root = v[static_cast<std::size_t>(tape_.root())];
  if (root.IsEmpty()) return ContractOutcome::kEmpty;

  // The constraint set is (-inf, 0]; for strict < the closure is the same,
  // which is a sound over-approximation.
  Interval narrowed = root.Intersect(Interval::NonPositive());
  if (narrowed.IsEmpty()) return ContractOutcome::kEmpty;

  v[static_cast<std::size_t>(tape_.root())] = narrowed;

  // Reverse sweep. Because the tape is in topological order, every parent is
  // processed before its children, so narrowings flow root-to-leaves.
  // Projections from un-narrowed parents are expansive no-ops (sound).
  std::vector<std::int32_t> operand_slots;
  for (std::size_t k = tape_.size(); k-- > 0;) {
    const Instr& ins = tape_.instrs[k];
    const Interval z = v[k];
    if (z.IsEmpty()) return ContractOutcome::kEmpty;
    auto narrow = [&](std::int32_t slot, const Interval& projection) {
      v[static_cast<std::size_t>(slot)] =
          v[static_cast<std::size_t>(slot)].Intersect(projection);
    };
    switch (ins.op) {
      case Op::kConst:
        if (!z.Contains(ins.value)) return ContractOutcome::kEmpty;
        break;
      case Op::kVar:
        break;  // handled after the sweep
      case Op::kAdd: {
        // Project each operand *position*: skip exactly one occurrence of
        // the slot, so duplicated operands (x + x) are handled soundly.
        operand_slots.clear();
        operand_slots.push_back(ins.a);
        operand_slots.push_back(ins.b);
        operand_slots.insert(operand_slots.end(), ins.rest.begin(),
                             ins.rest.end());
        for (std::size_t p = 0; p < operand_slots.size(); ++p) {
          Interval others(0.0);
          for (std::size_t q = 0; q < operand_slots.size(); ++q)
            if (q != p)
              others = others +
                       v[static_cast<std::size_t>(operand_slots[q])];
          narrow(operand_slots[p], z - others);
        }
        break;
      }
      case Op::kMul: {
        operand_slots.clear();
        operand_slots.push_back(ins.a);
        operand_slots.push_back(ins.b);
        operand_slots.insert(operand_slots.end(), ins.rest.begin(),
                             ins.rest.end());
        for (std::size_t p = 0; p < operand_slots.size(); ++p) {
          Interval others(1.0);
          for (std::size_t q = 0; q < operand_slots.size(); ++q)
            if (q != p)
              others = others *
                       v[static_cast<std::size_t>(operand_slots[q])];
          if (!others.ContainsZero()) narrow(operand_slots[p], z / others);
        }
        break;
      }
      case Op::kDiv: {
        // z = x / y  =>  x = z * y,  y = x / z.
        narrow(ins.a, z * v[static_cast<std::size_t>(ins.b)]);
        if (!z.ContainsZero())
          narrow(ins.b, v[static_cast<std::size_t>(ins.a)] / z);
        break;
      }
      case Op::kPow: {
        const Instr& exp_ins = tape_.instrs[static_cast<std::size_t>(ins.b)];
        if (exp_ins.op != Op::kConst) break;  // symbolic exponent: skip
        const double p = exp_ins.value;
        const Interval x = v[static_cast<std::size_t>(ins.a)];
        if (p == std::floor(p) && std::fabs(p) < 1e15) {
          const auto n = static_cast<long long>(p);
          if (n % 2 != 0) {
            // Odd power is a bijection on the reals.
            if (n > 0)
              narrow(ins.a, OddRoot(z, n));
            else if (!z.ContainsZero())
              narrow(ins.a, OddRoot(1.0 / z, -n));
          } else if (n > 0) {
            // Even power: |x| = z^{1/n}.
            Interval r = Pow(z.Intersect(Interval::NonNegative()),
                             1.0 / static_cast<double>(n));
            if (r.IsEmpty()) return ContractOutcome::kEmpty;
            narrow(ins.a, Interval(-r.hi(), r.hi()));
          } else if (x.lo() >= 0.0 && !z.ContainsZero()) {
            narrow(ins.a, Pow(1.0 / z, -1.0 / static_cast<double>(n)));
          }
        } else if (x.lo() >= 0.0) {
          // Non-integer exponent: x >= 0 by domain; monotone in x.
          Interval zz = z.Intersect(Interval::NonNegative());
          if (zz.IsEmpty()) return ContractOutcome::kEmpty;
          narrow(ins.a, Pow(zz, 1.0 / p));
        }
        break;
      }
      case Op::kMin: {
        // z = min(x, y): both operands are >= z.lo; if one operand cannot
        // attain the minimum, the other must equal z.
        const Interval floor_iv(z.lo(), kInf);
        const Interval x = v[static_cast<std::size_t>(ins.a)];
        const Interval y = v[static_cast<std::size_t>(ins.b)];
        narrow(ins.a, floor_iv);
        narrow(ins.b, floor_iv);
        if (y.lo() > z.hi()) narrow(ins.a, z);
        if (x.lo() > z.hi()) narrow(ins.b, z);
        break;
      }
      case Op::kMax: {
        const Interval ceil_iv(-kInf, z.hi());
        const Interval x = v[static_cast<std::size_t>(ins.a)];
        const Interval y = v[static_cast<std::size_t>(ins.b)];
        narrow(ins.a, ceil_iv);
        narrow(ins.b, ceil_iv);
        if (y.hi() < z.lo()) narrow(ins.a, z);
        if (x.hi() < z.lo()) narrow(ins.b, z);
        break;
      }
      case Op::kNeg:
        narrow(ins.a, -z);
        break;
      case Op::kExp: {
        Interval x = Log(z);
        if (x.IsEmpty()) return ContractOutcome::kEmpty;  // z entirely < 0
        narrow(ins.a, x);
        break;
      }
      case Op::kLog:
        narrow(ins.a, Exp(z));
        break;
      case Op::kSqrt: {
        Interval zz = z.Intersect(Interval::NonNegative());
        if (zz.IsEmpty()) return ContractOutcome::kEmpty;
        narrow(ins.a, Sqr(zz));
        break;
      }
      case Op::kCbrt:
        narrow(ins.a, PowInt(z, 3));
        break;
      case Op::kSin:
      case Op::kCos:
        break;  // multivalued inverse: no contraction
      case Op::kAtan:
        narrow(ins.a, TanRestricted(z.Intersect(
                          Interval(-kHalfPi - 1e-12, kHalfPi + 1e-12))));
        break;
      case Op::kTanh:
        narrow(ins.a, AtanhRestricted(z.Intersect(Interval(-1.0, 1.0))));
        break;
      case Op::kAbs: {
        Interval zz = z.Intersect(Interval::NonNegative());
        if (zz.IsEmpty()) return ContractOutcome::kEmpty;
        const Interval x = v[static_cast<std::size_t>(ins.a)];
        Interval proj(-zz.hi(), zz.hi());
        if (x.lo() >= 0.0) proj = zz;
        else if (x.hi() <= 0.0) proj = -zz;
        narrow(ins.a, proj);
        break;
      }
      case Op::kLambertW: {
        // z = W0(x)  =>  x = z e^z; W0 range is [-1, inf).
        Interval zz = z.Intersect(Interval(-1.0, kInf));
        if (zz.IsEmpty()) return ContractOutcome::kEmpty;
        narrow(ins.a, WidenUlps(zz * Exp(zz), 2));
        break;
      }
      case Op::kSqr: {
        // z = x²: |x| = sqrt(z), same projection as an even kPow.
        Interval r = Sqrt(z.Intersect(Interval::NonNegative()));
        if (r.IsEmpty()) return ContractOutcome::kEmpty;
        narrow(ins.a, Interval(-r.hi(), r.hi()));
        break;
      }
      case Op::kPowN: {
        // Optimizer-produced integer power; mirror the constant-exponent
        // kPow projections (n is never 0 or 1 after optimization).
        const auto n = static_cast<long long>(ins.var);
        const Interval x = v[static_cast<std::size_t>(ins.a)];
        if (n % 2 != 0) {
          if (n > 0) {
            narrow(ins.a, OddRoot(z, n));
          } else if (!z.ContainsZero()) {
            narrow(ins.a, OddRoot(1.0 / z, -n));
          }
        } else if (n > 0) {
          Interval r = Pow(z.Intersect(Interval::NonNegative()),
                           1.0 / static_cast<double>(n));
          if (r.IsEmpty()) return ContractOutcome::kEmpty;
          narrow(ins.a, Interval(-r.hi(), r.hi()));
        } else if (x.lo() >= 0.0 && !z.ContainsZero()) {
          narrow(ins.a, Pow(1.0 / z, -1.0 / static_cast<double>(n)));
        }
        break;
      }
      case Op::kIte: {
        // Contract the taken branch only when the condition is decided over
        // the (forward) operand enclosures; otherwise no contraction.
        const Interval l = v[static_cast<std::size_t>(ins.a)];
        const Interval r = v[static_cast<std::size_t>(ins.b)];
        const bool can_true =
            ins.rel == Rel::kLe ? PossiblyLe(l, r) : PossiblyLt(l, r);
        const bool can_false =
            ins.rel == Rel::kLe ? PossiblyLt(r, l) : PossiblyLe(r, l);
        if (can_true && !can_false) narrow(ins.c, z);
        if (can_false && !can_true) narrow(ins.d, z);
        break;
      }
    }
  }

  // Fold narrowed variable slots back into the box.
  bool contracted = false;
  for (std::size_t var = 0; var < tape_.var_slot.size(); ++var) {
    const std::int32_t slot = tape_.var_slot[var];
    if (slot < 0) continue;
    const Interval before = box[var];
    const Interval after = before.Intersect(v[static_cast<std::size_t>(slot)]);
    if (after.IsEmpty()) return ContractOutcome::kEmpty;
    if (after != before) {
      box[var] = after;
      contracted = true;
    }
  }
  return contracted ? ContractOutcome::kContracted
                    : ContractOutcome::kNoChange;
}

}  // namespace xcv::solver
