// The seven DFT exact conditions of the paper's §II, as local conditions ψ
// on the enhancement factors (paper Eqs. 4–10):
//
//   EC1  Ec non-positivity          F_c ≥ 0
//   EC2  Ec scaling inequality      ∂F_c/∂rs ≥ 0
//   EC3  Uc(λ) monotonicity         ∂²F_c/∂rs² ≥ -(2/rs) ∂F_c/∂rs
//   EC4  Lieb-Oxford bound          F_xc + rs ∂F_c/∂rs ≤ C_LO
//   EC5  LO extension to Exc        F_xc ≤ C_LO
//   EC6  Tc upper bound             ∂F_c/∂rs ≤ (F_c(∞) - F_c)/rs
//   EC7  conjectured Tc bound       ∂F_c/∂rs ≤ F_c/rs
//
// with C_LO = 2.27 and F_c(∞) ≈ F_c|rs=100 (following Pederson & Burke).
// Conditions involving division by rs are encoded multiplied through by
// rs — equivalent on the verification domain rs > 0 and far friendlier to
// interval arithmetic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "expr/bool_expr.h"
#include "functionals/functional.h"
#include "interval/interval.h"
#include "solver/box.h"

namespace xcv::conditions {

/// The Lieb-Oxford constant used by the paper (following [28]).
inline constexpr double kLiebOxford = 2.27;

enum class ConditionId {
  kEcNonPositivity,      // EC1
  kEcScalingInequality,  // EC2
  kUcMonotonicity,       // EC3
  kLiebOxfordBound,      // EC4
  kLiebOxfordExtension,  // EC5
  kTcUpperBound,         // EC6
  kConjecturedTcBound,   // EC7
};

struct ConditionInfo {
  ConditionId id;
  std::string short_id;      // "EC1"
  std::string name;          // "Ec non-positivity (Equation 4)"
  bool needs_exchange;       // LO conditions need an exchange part too
  /// Highest rs-derivative of F_c the encoding computes symbolically.
  int derivative_order;
};

/// All seven conditions in paper order (Table I row order).
const std::vector<ConditionInfo>& AllConditions();

/// Lookup by short id ("EC1".."EC7", case-insensitive); nullptr if unknown.
const ConditionInfo* FindCondition(const std::string& short_id);

/// True if `cond` applies to `f` (Table I's "−" entries are the
/// non-applicable pairs: LO conditions on correlation-only functionals).
bool Applies(const ConditionInfo& cond, const functionals::Functional& f);

/// Builds the local-condition formula ψ for the given DFA. This is the
/// XCEncoder step: enhancement factors from the functional's symbolic form,
/// derivatives computed symbolically, limits substituted. Returns nullopt
/// if the condition does not apply.
std::optional<expr::BoolExpr> BuildCondition(
    const ConditionInfo& cond, const functionals::Functional& f);

/// The verification domain used by the paper (from Pederson & Burke):
/// rs ∈ [1e-4, 5]; s ∈ [0, 5] for GGAs; α ∈ [0, 5] for meta-GGAs.
/// LDA functionals get the rs interval only.
solver::Box PaperDomain(const functionals::Functional& f);

}  // namespace xcv::conditions
