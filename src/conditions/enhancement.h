// Exchange/correlation enhancement factors (the paper's Eq. 2):
//
//   F_xc[n] = F_x + F_c = ε̃_xc / ε_x^unif
//
// with ε_x^unif the uniform-gas exchange energy per particle. Since
// ε_x^unif < 0 for all rs > 0, F_c ≥ 0 iff ε̃_c ≤ 0 — which is how EC1's two
// equivalent phrasings (Eqs. 3 and 4) relate.
#pragma once

#include "expr/expr.h"
#include "functionals/functional.h"

namespace xcv::conditions {

/// F_c = ε̃_c / ε_x^unif. Requires the functional to have correlation.
expr::Expr CorrelationEnhancement(const functionals::Functional& f);

/// F_x = ε̃_x / ε_x^unif. Requires the functional to have exchange.
expr::Expr ExchangeEnhancement(const functionals::Functional& f);

/// F_xc = F_x + F_c. Requires both parts.
expr::Expr XcEnhancement(const functionals::Functional& f);

/// ∂F_c/∂rs, computed symbolically.
expr::Expr DFcDrs(const functionals::Functional& f);

/// ∂²F_c/∂rs², computed symbolically.
expr::Expr D2FcDrs2(const functionals::Functional& f);

/// F_c(∞) ≈ F_c|rs=100 — the paper's finite surrogate for the rs → ∞ limit
/// (following Pederson & Burke). A function of s (and α) only.
expr::Expr FcAtInfinity(const functionals::Functional& f);

}  // namespace xcv::conditions
