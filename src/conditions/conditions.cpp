#include "conditions/conditions.h"

#include "conditions/enhancement.h"
#include "functionals/variables.h"
#include "support/check.h"
#include "support/strings.h"

namespace xcv::conditions {

using expr::BoolExpr;
using expr::Expr;
using functionals::Functional;

const std::vector<ConditionInfo>& AllConditions() {
  static const std::vector<ConditionInfo>* conditions =
      new std::vector<ConditionInfo>{
          {ConditionId::kEcNonPositivity, "EC1",
           "Ec non-positivity (Equation 4)", /*needs_exchange=*/false,
           /*derivative_order=*/0},
          {ConditionId::kEcScalingInequality, "EC2",
           "Ec scaling inequality (Equation 5)", false, 1},
          {ConditionId::kUcMonotonicity, "EC3",
           "Uc monotonicity (Equation 6)", false, 2},
          {ConditionId::kTcUpperBound, "EC6",
           "Tc upper bound (Equation 9)", false, 1},
          {ConditionId::kConjecturedTcBound, "EC7",
           "Conjectured Tc upper bound (Equation 10)", false, 1},
          {ConditionId::kLiebOxfordBound, "EC4",
           "LO bound (Equation 7)", true, 1},
          {ConditionId::kLiebOxfordExtension, "EC5",
           "LO extension to Exc (Equation 8)", true, 0},
      };
  return *conditions;
}

const ConditionInfo* FindCondition(const std::string& short_id) {
  const std::string key = ToLower(short_id);
  for (const ConditionInfo& c : AllConditions())
    if (ToLower(c.short_id) == key) return &c;
  return nullptr;
}

bool Applies(const ConditionInfo& cond, const Functional& f) {
  if (!f.HasCorrelation()) return false;  // every condition involves F_c
  if (cond.needs_exchange && !f.HasExchange()) return false;
  return true;
}

std::optional<BoolExpr> BuildCondition(const ConditionInfo& cond,
                                       const Functional& f) {
  if (!Applies(cond, f)) return std::nullopt;
  const Expr rs = functionals::VarRs();
  const Expr zero = Expr::Constant(0.0);
  const Expr clo = Expr::Constant(kLiebOxford);

  switch (cond.id) {
    case ConditionId::kEcNonPositivity:
      // F_c ≥ 0  (Eq. 4).
      return BoolExpr::Ge(CorrelationEnhancement(f), zero);
    case ConditionId::kEcScalingInequality:
      // ∂F_c/∂rs ≥ 0  (Eq. 5).
      return BoolExpr::Ge(DFcDrs(f), zero);
    case ConditionId::kUcMonotonicity: {
      // ∂²F_c/∂rs² ≥ -(2/rs) ∂F_c/∂rs  (Eq. 6), multiplied through by
      // rs > 0:  rs ∂²F_c/∂rs² + 2 ∂F_c/∂rs ≥ 0.
      const Expr lhs =
          rs * D2FcDrs2(f) + 2.0 * DFcDrs(f);
      return BoolExpr::Ge(lhs, zero);
    }
    case ConditionId::kLiebOxfordBound:
      // F_xc + rs ∂F_c/∂rs ≤ C_LO  (Eq. 7).
      return BoolExpr::Le(XcEnhancement(f) + rs * DFcDrs(f), clo);
    case ConditionId::kLiebOxfordExtension:
      // F_xc ≤ C_LO  (Eq. 8).
      return BoolExpr::Le(XcEnhancement(f), clo);
    case ConditionId::kTcUpperBound: {
      // ∂F_c/∂rs ≤ (F_c(∞) - F_c)/rs  (Eq. 9), times rs > 0.
      const Expr lhs = rs * DFcDrs(f);
      const Expr rhs = FcAtInfinity(f) - CorrelationEnhancement(f);
      return BoolExpr::Le(lhs, rhs);
    }
    case ConditionId::kConjecturedTcBound: {
      // ∂F_c/∂rs ≤ F_c/rs  (Eq. 10), times rs > 0.
      return BoolExpr::Le(rs * DFcDrs(f), CorrelationEnhancement(f));
    }
  }
  XCV_CHECK_MSG(false, "unhandled condition id");
  return std::nullopt;
}

solver::Box PaperDomain(const Functional& f) {
  std::vector<Interval> dims;
  dims.emplace_back(1e-4, 5.0);                       // rs
  if (f.num_inputs >= 2) dims.emplace_back(0.0, 5.0);  // s
  if (f.num_inputs >= 3) dims.emplace_back(0.0, 5.0);  // alpha
  return solver::Box(std::move(dims));
}

}  // namespace xcv::conditions
