#include "conditions/enhancement.h"

#include "functionals/variables.h"
#include "support/check.h"

namespace xcv::conditions {

using expr::Expr;
using functionals::Functional;

Expr CorrelationEnhancement(const Functional& f) {
  XCV_CHECK_MSG(f.HasCorrelation(),
                "'" << f.name << "' has no correlation part");
  return expr::Div(f.eps_c, functionals::EpsXUnif());
}

Expr ExchangeEnhancement(const Functional& f) {
  XCV_CHECK_MSG(f.HasExchange(), "'" << f.name << "' has no exchange part");
  return expr::Div(f.eps_x, functionals::EpsXUnif());
}

Expr XcEnhancement(const Functional& f) {
  return expr::Add(ExchangeEnhancement(f), CorrelationEnhancement(f));
}

Expr DFcDrs(const Functional& f) {
  return expr::Differentiate(CorrelationEnhancement(f),
                             functionals::VarRs());
}

Expr D2FcDrs2(const Functional& f) {
  return expr::Differentiate(DFcDrs(f), functionals::VarRs());
}

Expr FcAtInfinity(const Functional& f) {
  return expr::Substitute(CorrelationEnhancement(f), functionals::VarRs(),
                          Expr::Constant(100.0));
}

}  // namespace xcv::conditions
