#include "cache/verdict_cache.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "expr/optimize.h"
#include "obs/metrics.h"
#include "solver/box.h"
#include "support/check.h"
#include "support/io.h"
#include "support/json.h"

namespace xcv::cache {

using expr::FnvMix;
using json::JsonDouble;
using json::JsonValue;

std::string CachedKindToken(CachedKind kind) {
  switch (kind) {
    case CachedKind::kUnsat: return "unsat";
    case CachedKind::kDeltaSat: return "delta_sat";
    case CachedKind::kTimeout: return "timeout";
  }
  return "unsat";
}

CachedKind CachedKindFromToken(const std::string& token) {
  if (token == "unsat") return CachedKind::kUnsat;
  if (token == "delta_sat") return CachedKind::kDeltaSat;
  if (token == "timeout") return CachedKind::kTimeout;
  XCV_CHECK_MSG(false, "unknown cached verdict kind '" << token << "'");
  return CachedKind::kUnsat;
}

namespace {

// Process-wide resident-entry gauge, delta-updated at every count_
// mutation across every VerdictCache instance (a campaign's file-backed
// cache and the daemon's shared cache both report into it).
obs::Gauge& CacheEntriesGauge() {
  static obs::Gauge& g = obs::Registry::Global().GetGauge(
      "xcv_cache_store_entries",
      "Verdict-cache entries resident in this process (all caches).");
  return g;
}

// Endpoint identity is bit-pattern identity: -0.0 and 0.0 are different
// keys, exactly as the solver's splitting arithmetic produces them. The
// comparisons live in solver/box.h (shared with the shard merge).
using solver::BoxBitsLess;
using solver::SameBoxBits;

void AppendDoubles(std::string& out, std::span<const double> values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += JsonDouble(values[i]);
  }
  out += ']';
}

void AppendIntervals(std::string& out, std::span<const Interval> dims) {
  out += '[';
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) out += ',';
    out += '[';
    out += JsonDouble(dims[i].lo());
    out += ',';
    out += JsonDouble(dims[i].hi());
    out += ']';
  }
  out += ']';
}

std::vector<Interval> IntervalsFromJson(const JsonValue& v) {
  std::vector<Interval> dims;
  dims.reserve(v.array.size());
  for (const JsonValue& d : v.array) {
    XCV_CHECK_MSG(d.array.size() == 2, "cache box dimension needs [lo, hi]");
    dims.emplace_back(d.array[0].AsDouble(), d.array[1].AsDouble());
  }
  return dims;
}

}  // namespace

std::uint64_t VerdictCache::MapKey(std::uint64_t scope,
                                   std::span<const Interval> box) {
  std::uint64_t h = expr::kFnvOffset;
  h = FnvMix(h, scope);
  h = FnvMix(h, box.size());
  for (const Interval& iv : box) {
    h = FnvMix(h, std::bit_cast<std::uint64_t>(iv.lo()));
    h = FnvMix(h, std::bit_cast<std::uint64_t>(iv.hi()));
  }
  return h;
}

VerdictCache::~VerdictCache() {
  CacheEntriesGauge().Add(-static_cast<double>(count_));
}

bool VerdictCache::Lookup(std::uint64_t scope, std::span<const Interval> box,
                          CachedVerdict* out) const {
  const std::uint64_t key = MapKey(scope, box);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    for (const Entry& e : it->second) {
      if (e.scope == scope && SameBoxBits(e.box, box)) {
        *out = e.verdict;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void VerdictCache::Store(std::uint64_t scope, std::span<const Interval> box,
                         CachedVerdict verdict) {
  const std::uint64_t key = MapKey(scope, box);
  std::lock_guard<std::mutex> lock(mu_);
  stores_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Entry>& bucket = entries_[key];
  for (Entry& e : bucket) {
    if (e.scope == scope && SameBoxBits(e.box, box)) {
      e.verdict = std::move(verdict);  // refresh (e.g. after a rejected hit)
      return;
    }
  }
  Entry entry;
  entry.scope = scope;
  entry.box.assign(box.begin(), box.end());
  entry.verdict = std::move(verdict);
  bucket.push_back(std::move(entry));
  ++count_;
  CacheEntriesGauge().Add(1.0);
}

bool VerdictCache::Erase(std::uint64_t scope, std::span<const Interval> box) {
  const std::uint64_t key = MapKey(scope, box);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  std::vector<Entry>& bucket = it->second;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].scope == scope && SameBoxBits(bucket[i].box, box)) {
      bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(i));
      if (bucket.empty()) entries_.erase(it);
      --count_;
      CacheEntriesGauge().Add(-1.0);
      return true;
    }
  }
  return false;
}

void VerdictCache::ForEach(
    const std::function<void(std::uint64_t, std::span<const Interval>,
                             const CachedVerdict&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> sorted;
  sorted.reserve(count_);
  for (const auto& [key, bucket] : entries_)
    for (const Entry& e : bucket) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    if (a->scope != b->scope) return a->scope < b->scope;
    return BoxBitsLess(a->box, b->box);
  });
  for (const Entry* e : sorted) fn(e->scope, e->box, e->verdict);
}

std::size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

CacheCounters VerdictCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.stores = stores_.load(std::memory_order_relaxed);
  return c;
}

std::string VerdictCache::ToJson() const {
  // Canonical entry order (the ForEach order) → byte-identical files for
  // equal caches (CI uploads the cache as an artifact; stable bytes make
  // diffs meaningful).
  std::string out = "{\n";
  out += "  \"format\": \"xcv-verdict-cache\",\n";
  out += "  \"version\": 1,\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"entries\": [";
  char buf[32];
  std::size_t i = 0;
  ForEach([&](std::uint64_t scope, std::span<const Interval> box,
              const CachedVerdict& verdict) {
    if (i++) out += ',';
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(scope));
    out += "\n    {\"scope\": \"";
    out += buf;
    out += "\", \"box\": ";
    AppendIntervals(out, box);
    out += ", \"kind\": \"" + CachedKindToken(verdict.kind) + "\"";
    out += ", \"nodes\": " + std::to_string(verdict.nodes);
    if (!verdict.model.empty()) {
      out += ", \"model\": ";
      AppendDoubles(out, verdict.model);
    }
    if (!verdict.model_box.empty()) {
      out += ", \"model_box\": ";
      AppendIntervals(out, verdict.model_box);
    }
    out += '}';
  });
  if (i > 0) out += "\n  ";
  out += "]\n}\n";
  return out;
}

bool VerdictCache::FromJson(const std::string& json_text) {
  // Parse into a staging map first so malformed input cannot leave the
  // cache half-loaded.
  std::unordered_map<std::uint64_t, std::vector<Entry>> staged;
  std::size_t count = 0;
  try {
    const JsonValue root = json::ParseJson(json_text);
    XCV_CHECK_MSG(root.At("format").AsString() == "xcv-verdict-cache",
                  "not an xcv verdict cache");
    json::RequireSupportedSchema(root, "xcv-verdict-cache", 1);
    for (const JsonValue& ev : root.At("entries").array) {
      Entry e = EntryFromJson(ev);
      staged[MapKey(e.scope, e.box)].push_back(std::move(e));
      ++count;
    }
  } catch (const InternalError&) {
    std::lock_guard<std::mutex> lock(mu_);
    CacheEntriesGauge().Add(-static_cast<double>(count_));
    entries_.clear();
    count_ = 0;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  CacheEntriesGauge().Add(static_cast<double>(count) -
                          static_cast<double>(count_));
  entries_ = std::move(staged);
  count_ = count;
  return true;
}

VerdictCache::Entry VerdictCache::EntryFromJson(const JsonValue& ev) {
  Entry e;
  const std::string& scope_hex = ev.At("scope").AsString();
  char* end = nullptr;
  e.scope = std::strtoull(scope_hex.c_str(), &end, 16);
  XCV_CHECK_MSG(end != scope_hex.c_str() && *end == '\0',
                "bad cache scope '" << scope_hex << "'");
  e.box = IntervalsFromJson(ev.At("box"));
  e.verdict.kind = CachedKindFromToken(ev.At("kind").AsString());
  e.verdict.nodes = static_cast<std::uint64_t>(ev.At("nodes").AsDouble());
  if (const JsonValue* m = ev.Find("model"))
    for (const JsonValue& c : m->array) e.verdict.model.push_back(c.AsDouble());
  if (const JsonValue* mb = ev.Find("model_box"))
    e.verdict.model_box = IntervalsFromJson(*mb);
  return e;
}

bool VerdictCache::Load(const std::string& path, CacheLoadStats* stats) {
  CacheLoadStats local;
  CacheLoadStats& s = stats != nullptr ? *stats : local;
  s = CacheLoadStats{};

  std::string text;
  if (!support::ReadFileToString(path, &text, "cache.load")) {
    s.cold = true;
    s.detail = "cannot read '" + path + "'";
    return false;  // absent/unreadable file: cold start
  }
  const support::ChecksumStatus checksum =
      support::VerifyDocumentChecksum(text);

  if (checksum != support::ChecksumStatus::kMismatch && FromJson(text)) {
    s.clean = true;
    s.entries_recovered = size();
    return true;
  }

  if (checksum == support::ChecksumStatus::kMismatch) {
    // If the document also fails to parse it is torn and salvage below
    // applies; a document that parses whole but hashes wrong changed in
    // place, and then no entry can be trusted — cold start.
    bool parses = true;
    try {
      json::ParseJson(text);
    } catch (const InternalError&) {
      parses = false;
    }
    if (parses) {
      s.cold = true;
      s.quarantine_path = support::QuarantineFile(path, text);
      s.detail = "checksum mismatch in '" + path +
                 "' (content corruption); starting cold";
      return false;
    }
  }

  // Torn file: recover the longest prefix of complete entry objects. Each
  // is carved out with the balanced-bracket scanner and must parse on its
  // own to count.
  constexpr const char kEntriesMarker[] = "\"entries\": [";
  const std::size_t marker = text.find(kEntriesMarker);
  const std::size_t format = text.find("\"xcv-verdict-cache\"");
  if (marker == std::string::npos || format == std::string::npos) {
    s.cold = true;
    s.quarantine_path = support::QuarantineFile(path, text);
    s.detail = "cache '" + path +
               "' is damaged before its entries array; starting cold";
    return false;
  }

  std::unordered_map<std::uint64_t, std::vector<Entry>> staged;
  std::size_t count = 0;
  std::size_t pos = marker + sizeof(kEntriesMarker) - 1;
  for (;;) {
    while (pos < text.size() &&
           (text[pos] == ',' || text[pos] == '\n' || text[pos] == ' ' ||
            text[pos] == '\t' || text[pos] == '\r'))
      ++pos;
    if (pos >= text.size() || text[pos] != '{') break;
    const std::size_t end = json::SkipBalanced(text, pos);
    if (end == std::string::npos) break;  // the torn tail
    try {
      const JsonValue ev = json::ParseJson(text.substr(pos, end - pos));
      Entry e = EntryFromJson(ev);
      staged[MapKey(e.scope, e.box)].push_back(std::move(e));
      ++count;
    } catch (const InternalError&) {
      break;  // complete braces but damaged content: stop at the prefix
    }
    pos = end;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    CacheEntriesGauge().Add(static_cast<double>(count) -
                            static_cast<double>(count_));
    entries_ = std::move(staged);
    count_ = count;
  }
  s.salvaged = true;
  s.entries_recovered = count;
  s.quarantine_path = support::QuarantineFile(path, text);
  s.detail = "salvaged " + std::to_string(count) +
             " intact entr" + (count == 1 ? "y" : "ies") +
             " from torn cache '" + path + "'";
  return count > 0;
}

void VerdictCache::Save(const std::string& path) const {
  // The checksum is added at the file level, not in ToJson, so the
  // in-memory document stays byte-identical to what the merge and
  // round-trip tests compare.
  support::AtomicWriteFile(path, support::AddDocumentChecksum(ToJson()),
                           "cache.save");
}

}  // namespace xcv::cache
