// Persistent verdict cache: memoizes DeltaSolver::Check results across
// campaigns, so repeated runs (CI smoke matrices, parameter sweeps, EC×DFA
// matrices) skip solver work they have already paid for.
//
// Key = (scope, box):
//   * scope is a 64-bit fingerprint the solver derives from the canonical
//     optimized tapes of the formula's atoms, the formula skeleton, every
//     verdict-affecting solver option (delta, node budget, contraction
//     rounds, …— NOT wave_width, which is a pure batching knob), and a
//     caller-supplied salt (the campaign folds the condition id in);
//   * box is the queried domain's endpoints as exact bit patterns — lookups
//     match only boxes that are bit-for-bit the ones solved before, which is
//     what makes replay sound: deterministic splitting regenerates the exact
//     same boxes.
// Value = the solver's verdict (UNSAT / delta-sat model+box / node-budget
// timeout) plus node-count provenance. Verified (UNSAT) and counterexample
// leaves never change for a fixed scope; wall-clock-caused timeouts are
// never recorded (they are not reproducible).
//
// The cache may only skip work, never change verdicts: a hit replays the
// exact CheckResult the cold run produced, and the verifier engine
// batch-revalidates hits against a fresh interval sweep before trusting
// them (defense against scope-hash collisions and stale files).
//
// Thread-safe: one mutex around the map; counters are atomics. On-disk
// format is the repo's %.17g JSON (support/json.h), written atomically
// (temp file + rename). A corrupt, truncated or missing file degrades to an
// empty (cold) cache — it never throws out of Load.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include <mutex>

#include "interval/interval.h"

namespace xcv::json {
struct JsonValue;
}

namespace xcv::cache {

/// Cached solver outcome kinds. kTimeout entries are only ever recorded
/// when the deterministic node budget (part of the scope hash) was the
/// stopper, so replaying them is as sound as replaying UNSAT.
enum class CachedKind { kUnsat, kDeltaSat, kTimeout };

std::string CachedKindToken(CachedKind kind);
CachedKind CachedKindFromToken(const std::string& token);

/// One cached verdict (the parts of a CheckResult that replay).
struct CachedVerdict {
  CachedKind kind = CachedKind::kUnsat;
  std::vector<double> model;      // delta-sat witness point (may be empty)
  std::vector<Interval> model_box;  // terminal box of a delta-sat result
  std::uint64_t nodes = 0;        // provenance: branch-and-prune nodes spent
};

/// Counter snapshot (monotonic since construction/Load).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
};

/// Outcome of a cache load (the optional out-param of Load). Exactly one
/// of `clean`, `salvaged`, `cold` is true — same taxonomy as the
/// checkpoint loader (campaign/serialize.h):
///   * clean:    full parse + checksum ok (or legacy, no checksum field);
///   * salvaged: torn file — the longest intact prefix of complete entries
///     was recovered and the damaged original quarantined;
///   * cold:     absent file, unreadable file, damaged header, or a
///     document that parses but fails its checksum (content corruption —
///     no entry can be trusted).
struct CacheLoadStats {
  bool clean = false;
  bool salvaged = false;
  bool cold = false;
  std::size_t entries_recovered = 0;
  std::string quarantine_path;  ///< "<path>.corrupt" when damaged, else ""
  std::string detail;           ///< human-readable reason when not clean
};

class VerdictCache {
 public:
  VerdictCache() = default;
  /// Retires this cache's entries from the process-wide
  /// xcv_cache_store_entries gauge (src/obs/metrics.h).
  ~VerdictCache();

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  /// Exact lookup: scope must match bit-for-bit and `box` must equal the
  /// recorded box endpoint-for-endpoint. Fills `out` and returns true on a
  /// hit. Thread-safe.
  bool Lookup(std::uint64_t scope, std::span<const Interval> box,
              CachedVerdict* out) const;

  /// Inserts or overwrites the entry for (scope, box). Thread-safe.
  void Store(std::uint64_t scope, std::span<const Interval> box,
             CachedVerdict verdict);

  /// Removes the entry for (scope, box) if present. Returns true when an
  /// entry was removed. Thread-safe. Used by the shard cache union
  /// (src/shard/merge.cpp) to reject-and-drop conflicting entries.
  bool Erase(std::uint64_t scope, std::span<const Interval> box);

  /// Calls `fn` once per entry, in the same canonical (scope, then box bit
  /// patterns) order ToJson serializes — so unions and statistics built from
  /// the visit are deterministic. The mutex is held for the whole walk; `fn`
  /// must not call back into this cache.
  void ForEach(const std::function<void(std::uint64_t scope,
                                        std::span<const Interval> box,
                                        const CachedVerdict& verdict)>& fn)
      const;

  std::size_t size() const;
  CacheCounters counters() const;

  /// Serializes every entry as one JSON document, entries in a canonical
  /// order (scope, then box lexicographically) so equal caches produce
  /// byte-identical files.
  std::string ToJson() const;

  /// Replaces the contents with the entries parsed from `json_text`.
  /// Returns false (leaving the cache empty) on malformed input.
  bool FromJson(const std::string& json_text);

  /// Loads `path`, tolerating absent/corrupt/truncated files: a torn file
  /// yields the intact prefix of its entries (the damaged original is
  /// quarantined), anything worse leaves the cache empty — a cold start,
  /// never a crash. Returns true when the cache came back warm (a clean
  /// load, or a salvage that recovered at least one entry). Honours the
  /// "cache.load.eio" fault point. Fills `*stats` when non-null.
  bool Load(const std::string& path, CacheLoadStats* stats = nullptr);

  /// Writes the cache to `path` durably and atomically (temp file + fsync
  /// + rename + directory fsync), with a whole-document checksum. Honours
  /// the "cache.save.*" fault points. Throws xcv::InternalError on I/O
  /// failure.
  void Save(const std::string& path) const;

 private:
  struct Entry {
    std::uint64_t scope = 0;
    std::vector<Interval> box;
    CachedVerdict verdict;
  };

  static std::uint64_t MapKey(std::uint64_t scope,
                              std::span<const Interval> box);
  static Entry EntryFromJson(const json::JsonValue& ev);

  mutable std::mutex mu_;
  // Buckets by combined (scope, box-bits) hash; entries inside a bucket are
  // disambiguated by exact scope and box comparison.
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  std::size_t count_ = 0;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
};

}  // namespace xcv::cache
