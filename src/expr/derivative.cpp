// Symbolic differentiation on the hash-consed DAG.
//
// This replaces the paper's use of SymPy: conditions EC2–EC7 need exact
// ∂F_c/∂rs and ∂²F_c/∂rs², and the paper stresses that computing them
// symbolically avoids the numerical-approximation pitfalls of the PB grid
// approach. Memoization per (node, var) keeps derivative DAGs compact.
#include <unordered_map>

#include "expr/expr.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

class Differentiator {
 public:
  explicit Differentiator(const Expr& var) : var_(var) {
    XCV_CHECK_MSG(var.IsVariable(), "Differentiate: var must be a variable");
  }

  Expr Diff(const Expr& e) {
    auto it = memo_.find(e.id());
    if (it != memo_.end()) return it->second;
    Expr d = Compute(e);
    memo_.emplace(e.id(), d);
    return d;
  }

 private:
  Expr Compute(const Expr& e) {
    const Node& n = e.node();
    const auto& ch = n.children();
    switch (n.op()) {
      case Op::kConst:
        return Expr::Constant(0.0);
      case Op::kVar:
        return n.var_index() == var_.node().var_index()
                   ? Expr::Constant(1.0)
                   : Expr::Constant(0.0);
      case Op::kAdd: {
        std::vector<Expr> terms;
        terms.reserve(ch.size());
        for (const Expr& c : ch) terms.push_back(Diff(c));
        return Add(std::move(terms));
      }
      case Op::kMul: {
        // n-ary product rule: sum_i (prod_{j != i} c_j) * c_i'.
        std::vector<Expr> terms;
        for (std::size_t i = 0; i < ch.size(); ++i) {
          Expr di = Diff(ch[i]);
          if (di.IsConstant() && di.ConstantValue() == 0.0) continue;
          std::vector<Expr> factors;
          factors.reserve(ch.size());
          for (std::size_t j = 0; j < ch.size(); ++j)
            if (j != i) factors.push_back(ch[j]);
          factors.push_back(di);
          terms.push_back(Mul(std::move(factors)));
        }
        return Add(std::move(terms));
      }
      case Op::kDiv: {
        const Expr &a = ch[0], &b = ch[1];
        Expr da = Diff(a), db = Diff(b);
        return Div(Sub(Mul(da, b), Mul(a, db)), Mul(b, b));
      }
      case Op::kPow: {
        const Expr &a = ch[0], &b = ch[1];
        Expr da = Diff(a);
        if (b.IsConstant()) {
          const double p = b.ConstantValue();
          return Mul({Expr::Constant(p), Pow(a, p - 1.0), da});
        }
        Expr db = Diff(b);
        // d a^b = a^b (b' ln a + b a'/a), valid on a > 0 (all non-constant
        // exponents in the functional layer have positive bases).
        return Mul(e, Add(Mul(db, LogE(a)), Div(Mul(b, da), a)));
      }
      case Op::kMin:
        return Ite(ch[0], Rel::kLe, ch[1], Diff(ch[0]), Diff(ch[1]));
      case Op::kMax:
        return Ite(ch[0], Rel::kLe, ch[1], Diff(ch[1]), Diff(ch[0]));
      case Op::kNeg:
        return Neg(Diff(ch[0]));
      case Op::kExp:
        return Mul(e, Diff(ch[0]));
      case Op::kLog:
        return Div(Diff(ch[0]), ch[0]);
      case Op::kSqrt:
        return Div(Diff(ch[0]), Mul(Expr::Constant(2.0), e));
      case Op::kCbrt:
        // d cbrt(x) = x' / (3 cbrt(x)^2).
        return Div(Diff(ch[0]), Mul(Expr::Constant(3.0), Mul(e, e)));
      case Op::kSin:
        return Mul(CosE(ch[0]), Diff(ch[0]));
      case Op::kCos:
        return Neg(Mul(SinE(ch[0]), Diff(ch[0])));
      case Op::kAtan:
        return Div(Diff(ch[0]),
                   Add(Expr::Constant(1.0), Mul(ch[0], ch[0])));
      case Op::kTanh:
        return Mul(Sub(Expr::Constant(1.0), Mul(e, e)), Diff(ch[0]));
      case Op::kAbs:
        // sign(x) x' away from 0 (conditions never probe |.|'s kink).
        return Ite(Expr::Constant(0.0), Rel::kLe, ch[0], Diff(ch[0]),
                   Neg(Diff(ch[0])));
      case Op::kLambertW:
        // W'(x) = e^{-W(x)} / (1 + W(x)) — regular at x = 0.
        return Mul(Div(ExpE(Neg(e)), Add(Expr::Constant(1.0), e)),
                   Diff(ch[0]));
      case Op::kIte:
        // Branch-wise derivative; the condition itself is treated as locally
        // constant (correct except exactly on the switching surface).
        return Ite(ch[0], n.rel(), ch[1], Diff(ch[2]), Diff(ch[3]));
    }
    XCV_CHECK_MSG(false, "unhandled op in Differentiate");
    return Expr();
  }

  Expr var_;
  std::unordered_map<std::uint32_t, Expr> memo_;
};

}  // namespace

Expr Differentiate(const Expr& e, const Expr& var) {
  XCV_CHECK(!e.IsNull());
  return Differentiator(var).Diff(e);
}

}  // namespace xcv::expr
