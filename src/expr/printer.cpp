// Infix pretty-printer. Intended for tests, examples, and debugging; output
// is capped so printing a SCAN-sized DAG cannot hang the process.
#include <sstream>

#include "expr/expr.h"
#include "support/check.h"
#include "support/strings.h"

namespace xcv::expr {

namespace {

constexpr std::size_t kMaxPrintedNodes = 20000;

class Printer {
 public:
  std::string Print(const Expr& e) {
    std::ostringstream os;
    Emit(os, e, /*parent_prec=*/0);
    return os.str();
  }

 private:
  // Precedence: add=1, mul/div=2, unary-minus=3, pow=4, atoms=5.
  static int Precedence(Op op) {
    switch (op) {
      case Op::kAdd: return 1;
      case Op::kMul:
      case Op::kDiv: return 2;
      case Op::kNeg: return 3;
      case Op::kPow: return 4;
      default: return 5;
    }
  }

  void Emit(std::ostringstream& os, const Expr& e, int parent_prec) {
    if (++emitted_ > kMaxPrintedNodes) {
      os << "...";
      return;
    }
    const Node& n = e.node();
    const auto& ch = n.children();
    const int prec = Precedence(n.op());
    const bool paren = prec < parent_prec;
    switch (n.op()) {
      case Op::kConst: {
        const double v = n.value();
        if (v < 0.0) {
          if (parent_prec > 1) os << "(" << FormatDouble(v, 12) << ")";
          else os << FormatDouble(v, 12);
        } else {
          os << FormatDouble(v, 12);
        }
        return;
      }
      case Op::kVar:
        os << n.var_name();
        return;
      case Op::kAdd: {
        if (paren) os << "(";
        for (std::size_t i = 0; i < ch.size(); ++i) {
          if (i) os << " + ";
          Emit(os, ch[i], prec);
        }
        if (paren) os << ")";
        return;
      }
      case Op::kMul: {
        if (paren) os << "(";
        for (std::size_t i = 0; i < ch.size(); ++i) {
          if (i) os << "*";
          Emit(os, ch[i], prec + 1);
        }
        if (paren) os << ")";
        return;
      }
      case Op::kDiv: {
        if (paren) os << "(";
        Emit(os, ch[0], prec);
        os << "/";
        Emit(os, ch[1], prec + 1);
        if (paren) os << ")";
        return;
      }
      case Op::kPow: {
        if (paren) os << "(";
        Emit(os, ch[0], prec + 1);
        os << "^";
        Emit(os, ch[1], prec + 1);
        if (paren) os << ")";
        return;
      }
      case Op::kNeg: {
        if (paren) os << "(";
        os << "-";
        Emit(os, ch[0], prec);
        if (paren) os << ")";
        return;
      }
      case Op::kIte: {
        os << "ite(";
        Emit(os, ch[0], 0);
        os << (n.rel() == Rel::kLe ? " <= " : " < ");
        Emit(os, ch[1], 0);
        os << ", ";
        Emit(os, ch[2], 0);
        os << ", ";
        Emit(os, ch[3], 0);
        os << ")";
        return;
      }
      default: {
        os << OpName(n.op()) << "(";
        for (std::size_t i = 0; i < ch.size(); ++i) {
          if (i) os << ", ";
          Emit(os, ch[i], 0);
        }
        os << ")";
        return;
      }
    }
  }

  std::size_t emitted_ = 0;
};

}  // namespace

std::string Expr::ToString() const {
  if (IsNull()) return "<null>";
  return Printer().Print(*this);
}

}  // namespace xcv::expr
