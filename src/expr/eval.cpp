#include "expr/eval.h"

#include <cmath>
#include <unordered_map>

#include "interval/lambert_w.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

class DoubleEvaluator {
 public:
  explicit DoubleEvaluator(std::span<const double> env) : env_(env) {}

  double Eval(const Expr& e) {
    auto it = memo_.find(e.id());
    if (it != memo_.end()) return it->second;
    double v = Compute(e);
    memo_.emplace(e.id(), v);
    return v;
  }

 private:
  double Compute(const Expr& e) {
    const Node& n = e.node();
    const auto& ch = n.children();
    switch (n.op()) {
      case Op::kConst:
        return n.value();
      case Op::kVar:
        XCV_CHECK_MSG(n.var_index() >= 0 &&
                          static_cast<std::size_t>(n.var_index()) < env_.size(),
                      "variable '" << n.var_name() << "' (index "
                                   << n.var_index()
                                   << ") outside environment of size "
                                   << env_.size());
        return env_[static_cast<std::size_t>(n.var_index())];
      case Op::kAdd: {
        double s = 0.0;
        for (const Expr& c : ch) s += Eval(c);
        return s;
      }
      case Op::kMul: {
        double p = 1.0;
        for (const Expr& c : ch) p *= Eval(c);
        return p;
      }
      case Op::kDiv:
        return Eval(ch[0]) / Eval(ch[1]);
      case Op::kPow:
        return std::pow(Eval(ch[0]), Eval(ch[1]));
      case Op::kMin:
        return std::fmin(Eval(ch[0]), Eval(ch[1]));
      case Op::kMax:
        return std::fmax(Eval(ch[0]), Eval(ch[1]));
      case Op::kNeg:
        return -Eval(ch[0]);
      case Op::kExp:
        return std::exp(Eval(ch[0]));
      case Op::kLog:
        return std::log(Eval(ch[0]));
      case Op::kSqrt:
        return std::sqrt(Eval(ch[0]));
      case Op::kCbrt:
        return std::cbrt(Eval(ch[0]));
      case Op::kSin:
        return std::sin(Eval(ch[0]));
      case Op::kCos:
        return std::cos(Eval(ch[0]));
      case Op::kAtan:
        return std::atan(Eval(ch[0]));
      case Op::kTanh:
        return std::tanh(Eval(ch[0]));
      case Op::kAbs:
        return std::fabs(Eval(ch[0]));
      case Op::kLambertW:
        return LambertW0(Eval(ch[0]));
      case Op::kIte: {
        const double l = Eval(ch[0]), r = Eval(ch[1]);
        const bool cond = n.rel() == Rel::kLe ? l <= r : l < r;
        return cond ? Eval(ch[2]) : Eval(ch[3]);
      }
    }
    XCV_CHECK_MSG(false, "unhandled op in EvalDouble");
    return 0.0;
  }

  std::span<const double> env_;
  std::unordered_map<std::uint32_t, double> memo_;
};

}  // namespace

double EvalDouble(const Expr& e, std::span<const double> env) {
  XCV_CHECK(!e.IsNull());
  return DoubleEvaluator(env).Eval(e);
}

}  // namespace xcv::expr
