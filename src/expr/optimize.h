// Tape optimizer: rewrites a compiled tape into a shorter, faster one that
// denotes the same function (under the builder's value conventions) and whose
// interval evaluation still encloses it.
//
// Passes, applied in one forward sweep with value numbering plus a final
// dead-slot elimination:
//   * Constant folding — an instruction whose operands are all constants is
//     replaced by its value, computed with exactly the double semantics
//     EvalTape uses (so scalar results are unchanged bit for bit).
//   * Algebraic identities — x+0, x*1, x*0, x/1, mul(-1,x) → neg, neg(neg x),
//     min/max(x,x), ite with equal branches or decided constant conditions.
//     These mirror the smart-constructor rewrites in builder.cpp (same
//     value conventions over the natural domain), catching the instances
//     that appear only after other tape rewrites.
//   * Strength reduction — kPow with a constant integer or exact
//     half-integer exponent becomes kSqr / kPowN / kSqrt-based chains:
//     x^2 → sqr(x), x^n → pown(x,n), x^0.5 → sqrt(x),
//     x^(n+0.5) → pown(x,n)·sqrt(x), negative exponents via one divide.
//     Only exactly-representable exponents are reduced, so the rewritten
//     tape computes the same real function (PBE/LYP/SCAN enhancement
//     factors are dominated by such powers). Scalar results may differ from
//     std::pow by a few ulps; interval results stay sound enclosures.
//   * CSE + dead-slot elimination — value numbering dedups subcomputations
//     the rewrites expose (e.g. a shared sqrt(x)); orphaned slots (dead
//     exponent constants and rewritten pows) are removed and the remaining
//     slots renumbered, preserving topological order.
//
// Soundness note: interval evaluation of the optimized tape encloses the
// same real function as the input tape on its natural domain. Rewrites that
// would change domains (e.g. (a^p)^q → a^{pq}) are never applied. For
// half-integer powers over mixed-sign boxes the decomposed enclosure can be
// wider (never narrower than the function's range) — still sound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "expr/compile.h"
#include "expr/expr.h"

namespace xcv::expr {

/// Counters describing what Optimize() did (for logs, tests, benchmarks).
struct OptimizeStats {
  std::size_t folded = 0;            // instructions constant-folded away
  std::size_t simplified = 0;        // identity rewrites applied
  std::size_t strength_reduced = 0;  // pow instructions reduced
  std::size_t cse_hits = 0;          // value-numbering dedups
  std::size_t eliminated = 0;        // dead slots removed
  std::size_t size_before = 0;
  std::size_t size_after = 0;
};

/// Optimizes `tape`. The result evaluates to the same scalars (bit-identical
/// except for strength-reduced powers, which agree to a few ulps) and its
/// interval evaluation soundly encloses the same function. num_env_slots and
/// the variable indexing are preserved; var_slot is rebuilt.
Tape Optimize(const Tape& tape, OptimizeStats* stats = nullptr);

/// Compile(e) followed by Optimize() — the entry point every hot caller
/// (contractors, solver presampling, grid evaluation) should use.
Tape CompileOptimized(const Expr& e, OptimizeStats* stats = nullptr);

/// Structural 64-bit fingerprint of a tape: FNV-1a over every instruction's
/// op, relation, payload (constant bits, variable index / integer exponent)
/// and operand slots, in tape order. Two tapes get equal fingerprints iff
/// they are instruction-for-instruction identical; since Optimize() is a
/// canonicalizing rewrite (deterministic value numbering over a fixed pass
/// order), the fingerprint of an optimized tape is a stable identity for
/// "the same compiled formula" across processes — what the persistent
/// verdict cache (src/cache/) keys solver results by.
std::uint64_t TapeFingerprint(const Tape& tape);

/// FNV-1a continuation helpers, exposed so cache keys can fold additional
/// words (options, condition ids) into one running fingerprint.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
std::uint64_t FnvMix(std::uint64_t h, std::uint64_t word);
std::uint64_t FnvMixString(std::uint64_t h, const std::string& s);

}  // namespace xcv::expr
