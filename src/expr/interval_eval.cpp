#include <unordered_map>

#include "expr/eval.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

class IntervalEvaluator {
 public:
  explicit IntervalEvaluator(std::span<const Interval> box) : box_(box) {}

  Interval Eval(const Expr& e) {
    auto it = memo_.find(e.id());
    if (it != memo_.end()) return it->second;
    Interval v = Compute(e);
    memo_.emplace(e.id(), v);
    return v;
  }

 private:
  Interval Compute(const Expr& e) {
    const Node& n = e.node();
    const auto& ch = n.children();
    switch (n.op()) {
      case Op::kConst:
        return Interval(n.value());
      case Op::kVar:
        XCV_CHECK_MSG(n.var_index() >= 0 &&
                          static_cast<std::size_t>(n.var_index()) < box_.size(),
                      "variable '" << n.var_name() << "' (index "
                                   << n.var_index() << ") outside box of size "
                                   << box_.size());
        return box_[static_cast<std::size_t>(n.var_index())];
      case Op::kAdd: {
        Interval s(0.0);
        for (const Expr& c : ch) s = s + Eval(c);
        return s;
      }
      case Op::kMul: {
        Interval p(1.0);
        for (const Expr& c : ch) p = p * Eval(c);
        return p;
      }
      case Op::kDiv:
        return Eval(ch[0]) / Eval(ch[1]);
      case Op::kPow:
        return Pow(Eval(ch[0]), Eval(ch[1]));
      case Op::kMin:
        return Min(Eval(ch[0]), Eval(ch[1]));
      case Op::kMax:
        return Max(Eval(ch[0]), Eval(ch[1]));
      case Op::kNeg:
        return -Eval(ch[0]);
      case Op::kExp:
        return Exp(Eval(ch[0]));
      case Op::kLog:
        return Log(Eval(ch[0]));
      case Op::kSqrt:
        return Sqrt(Eval(ch[0]));
      case Op::kCbrt:
        return Cbrt(Eval(ch[0]));
      case Op::kSin:
        return Sin(Eval(ch[0]));
      case Op::kCos:
        return Cos(Eval(ch[0]));
      case Op::kAtan:
        return Atan(Eval(ch[0]));
      case Op::kTanh:
        return Tanh(Eval(ch[0]));
      case Op::kAbs:
        return Abs(Eval(ch[0]));
      case Op::kLambertW:
        return LambertW0(Eval(ch[0]));
      case Op::kIte: {
        const Interval l = Eval(ch[0]), r = Eval(ch[1]);
        const bool can_true =
            n.rel() == Rel::kLe ? PossiblyLe(l, r) : PossiblyLt(l, r);
        const bool can_false =
            n.rel() == Rel::kLe ? PossiblyLt(r, l) : PossiblyLe(r, l);
        Interval out = Interval::Empty();
        if (can_true) out = out.Hull(Eval(ch[2]));
        if (can_false) out = out.Hull(Eval(ch[3]));
        return out;
      }
    }
    XCV_CHECK_MSG(false, "unhandled op in EvalInterval");
    return Interval::Empty();
  }

  std::span<const Interval> box_;
  std::unordered_map<std::uint32_t, Interval> memo_;
};

}  // namespace

Interval EvalInterval(const Expr& e, std::span<const Interval> box) {
  XCV_CHECK(!e.IsNull());
  return IntervalEvaluator(box).Eval(e);
}

}  // namespace xcv::expr
