// Immutable, hash-consed symbolic expressions.
//
// Expr is a value type wrapping a shared pointer to an interned Node.
// Structural identity implies pointer identity (hash-consing), which keeps
// DAGs compact: SCAN's correlation energy and its second derivative share
// enormous subtrees. Every Node carries a process-unique id used as a memo
// key by the evaluators, the differentiator, and the tape compiler.
//
// Construction goes through smart factories that apply cheap local
// simplifications (constant folding, neutral/absorbing elements, add/mul
// flattening), so clients can write formulas naturally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/op.h"

namespace xcv::expr {

class Node;

/// Handle to an interned expression node. Cheap to copy; equality is
/// structural (== pointer identity thanks to hash-consing).
class Expr {
 public:
  /// Null handle; most APIs reject it. Use the factories below.
  Expr() = default;

  bool IsNull() const { return node_ == nullptr; }
  const Node& node() const { return *node_; }
  const Node* get() const { return node_.get(); }

  /// Process-unique id of the interned node.
  std::uint32_t id() const;

  Op op() const;
  bool IsConstant() const;
  bool IsVariable() const;
  /// Constant value; requires IsConstant().
  double ConstantValue() const;

  bool operator==(const Expr& other) const { return node_ == other.node_; }
  bool operator!=(const Expr& other) const { return node_ != other.node_; }

  /// Human-readable infix form.
  std::string ToString() const;

  // ---- Leaf factories ----
  static Expr Constant(double v);
  /// Variable with evaluation-environment slot `index` (>= 0).
  static Expr Variable(const std::string& name, int index);

 private:
  friend class NodeInterner;
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

/// Interned DAG node. Immutable after construction.
class Node {
 public:
  Op op() const { return op_; }
  Rel rel() const { return rel_; }
  double value() const { return value_; }
  int var_index() const { return var_index_; }
  const std::string& var_name() const { return var_name_; }
  const std::vector<Expr>& children() const { return children_; }
  std::uint32_t id() const { return id_; }

 private:
  friend class NodeInterner;
  Op op_ = Op::kConst;
  Rel rel_ = Rel::kLe;       // meaningful for kIte only
  double value_ = 0.0;       // kConst payload
  int var_index_ = -1;       // kVar payload
  std::string var_name_;     // kVar payload
  std::vector<Expr> children_;
  std::uint32_t id_ = 0;
};

// ---- Smart constructors (builder.cpp) ---------------------------------------

Expr Add(std::vector<Expr> terms);
Expr Add(const Expr& a, const Expr& b);
Expr Sub(const Expr& a, const Expr& b);
Expr Mul(std::vector<Expr> factors);
Expr Mul(const Expr& a, const Expr& b);
Expr Div(const Expr& a, const Expr& b);
Expr Neg(const Expr& a);
/// a^b. Constant exponents fold through the usual identities.
Expr Pow(const Expr& a, const Expr& b);
Expr Pow(const Expr& a, double b);
Expr Min(const Expr& a, const Expr& b);
Expr Max(const Expr& a, const Expr& b);
Expr ExpE(const Expr& a);
Expr LogE(const Expr& a);
Expr SqrtE(const Expr& a);
Expr CbrtE(const Expr& a);
Expr SinE(const Expr& a);
Expr CosE(const Expr& a);
Expr AtanE(const Expr& a);
Expr TanhE(const Expr& a);
Expr AbsE(const Expr& a);
Expr LambertW0E(const Expr& a);
/// if (lhs rel rhs) then t else f.
Expr Ite(const Expr& lhs, Rel rel, const Expr& rhs, const Expr& t,
         const Expr& f);

// Operator sugar.
inline Expr operator+(const Expr& a, const Expr& b) { return Add(a, b); }
inline Expr operator-(const Expr& a, const Expr& b) { return Sub(a, b); }
inline Expr operator*(const Expr& a, const Expr& b) { return Mul(a, b); }
inline Expr operator/(const Expr& a, const Expr& b) { return Div(a, b); }
inline Expr operator-(const Expr& a) { return Neg(a); }
inline Expr operator+(const Expr& a, double b) { return Add(a, Expr::Constant(b)); }
inline Expr operator-(const Expr& a, double b) { return Sub(a, Expr::Constant(b)); }
inline Expr operator*(const Expr& a, double b) { return Mul(a, Expr::Constant(b)); }
inline Expr operator/(const Expr& a, double b) { return Div(a, Expr::Constant(b)); }
inline Expr operator+(double a, const Expr& b) { return Add(Expr::Constant(a), b); }
inline Expr operator-(double a, const Expr& b) { return Sub(Expr::Constant(a), b); }
inline Expr operator*(double a, const Expr& b) { return Mul(Expr::Constant(a), b); }
inline Expr operator/(double a, const Expr& b) { return Div(Expr::Constant(a), b); }

// ---- Analyses ----------------------------------------------------------------

/// d expr / d var, computed symbolically on the DAG (derivative.cpp).
/// `var` must be a kVar expression. kIte differentiates branch-wise; kAbs
/// uses sign(x)·x' away from 0 (the conditions never differentiate |·| at 0).
Expr Differentiate(const Expr& e, const Expr& var);

/// Replaces every occurrence of variable `var` by `replacement`.
Expr Substitute(const Expr& e, const Expr& var, const Expr& replacement);

/// Number of non-leaf operations in the DAG, counted per distinct node
/// (shared subexpressions count once) — the paper's "operation count".
std::size_t OpCountDag(const Expr& e);
/// Operation count of the fully expanded tree (shared nodes counted each
/// time they appear). This matches counting ops in generated code.
std::size_t OpCountTree(const Expr& e);
/// Longest root-to-leaf path.
std::size_t Depth(const Expr& e);
/// Distinct variables appearing in `e`, sorted by index.
std::vector<Expr> FreeVariables(const Expr& e);
/// True if any transcendental op appears.
bool HasTranscendental(const Expr& e);

}  // namespace xcv::expr
