// Tape compilation: flattens an expression DAG into SSA-style instructions
// in topological order.
//
// The tape is the solver's working representation. Forward interval
// evaluation fills one slot per instruction; the HC4-revise contractor then
// walks the tape backward, narrowing child slots from parent slots. Repeated
// double evaluation (PB grid baseline) also runs on the tape to avoid
// hash-map memoization per point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "expr/expr.h"
#include "interval/interval.h"

namespace xcv::expr {

/// One instruction; operands a..d are slot indices of earlier instructions
/// (-1 when unused). The instruction's own result lives in the slot with the
/// instruction's index.
struct Instr {
  Op op = Op::kConst;
  Rel rel = Rel::kLe;       // kIte only
  double value = 0.0;       // kConst payload
  int var = -1;             // kVar payload: environment index.
                            // kPowN payload: the integer exponent n.
  std::int32_t a = -1, b = -1, c = -1, d = -1;
  /// Extra operands for n-ary add/mul beyond the first two (slot indices).
  std::vector<std::int32_t> rest;
};

/// A compiled expression. Immutable after Compile().
struct Tape {
  std::vector<Instr> instrs;   // topological order; root is the last slot
  int num_env_slots = 0;       // max variable index + 1
  std::vector<std::int32_t> var_slot;  // var index -> slot, -1 if absent

  int root() const { return static_cast<int>(instrs.size()) - 1; }
  std::size_t size() const { return instrs.size(); }
};

/// Compiles `e` into a tape. Each distinct DAG node becomes exactly one
/// instruction.
Tape Compile(const Expr& e);

/// Scratch buffers reusable across evaluations (avoids reallocation in hot
/// loops).
struct TapeScratch {
  std::vector<double> values;
  std::vector<Interval> intervals;

  /// Pre-sizes both buffers for tapes of up to `slots` instructions, so the
  /// hot loop never grows them lazily.
  void Reserve(std::size_t slots) {
    values.reserve(slots);
    intervals.reserve(slots);
  }
};

/// Double evaluation of the tape at `env`. Resizes `scratch` as needed.
double EvalTape(const Tape& tape, std::span<const double> env,
                TapeScratch& scratch);

/// x^n for integer n by binary exponentiation — the scalar semantics of the
/// kPowN instruction (exposed so the optimizer's constant folder matches the
/// evaluators exactly).
double PowNScalar(double x, int n);

/// Sound interval evaluation of the tape over `box`.
Interval EvalTapeInterval(const Tape& tape, std::span<const Interval> box,
                          TapeScratch& scratch);

/// Interval evaluation that leaves the per-slot enclosures in
/// `scratch.intervals` (the forward phase of HC4-revise).
Interval EvalTapeIntervalForward(const Tape& tape,
                                 std::span<const Interval> box,
                                 TapeScratch& scratch);

/// Core of the above: per-slot enclosures land in `slots` (resized to the
/// tape). Exposed so callers can keep per-atom enclosure caches without
/// routing them through a shared TapeScratch.
Interval EvalTapeIntervalForward(const Tape& tape,
                                 std::span<const Interval> box,
                                 std::vector<Interval>& slots);

// ---- Batched structure-of-arrays evaluation ---------------------------------

/// Reusable scratch for EvalTapeBatch: one row of `n` doubles per tape slot,
/// plus a per-slot operand pointer table. Grows monotonically; reuse one
/// instance per thread across chunks to amortize allocation.
struct TapeBatchScratch {
  std::vector<double> lanes;        // tape.size() rows × row capacity
  std::vector<const double*> rows;  // slot -> row base (lane or input array)
  std::size_t capacity = 0;         // current row capacity (points)

  /// Pre-sizes for `slots`-instruction tapes over `n`-point batches so the
  /// first evaluations do not grow the buffers mid-flight.
  void Reserve(std::size_t slots, std::size_t n) {
    lanes.reserve(slots * n);
    rows.reserve(slots);
  }
};

/// Evaluates the tape at `n` points in one sweep (structure-of-arrays).
/// `inputs[v]` must point to `n` contiguous values for environment slot `v`
/// (only slots the tape actually reads are dereferenced; unused entries may
/// be null). Root values are written to `out[0..n)`.
///
/// Each instruction is applied to all `n` points in a tight loop before the
/// next instruction runs, so the per-instruction dispatch cost is amortized
/// N-fold and the inner loops auto-vectorize. Results are bit-identical to
/// calling EvalTape point by point on the same tape.
void EvalTapeBatch(const Tape& tape, std::span<const double* const> inputs,
                   std::size_t n, double* out, TapeBatchScratch& scratch);

// ---- Batched structure-of-arrays interval evaluation ------------------------

/// Reusable scratch for EvalTapeIntervalBatch: one lo row and one hi row of
/// `n` doubles per tape slot, plus per-slot operand row tables. Grows
/// monotonically; reuse one instance per thread across waves.
struct TapeIntervalBatchScratch {
  std::vector<double> lo_lanes, hi_lanes;  // tape.size() rows × row capacity
  std::vector<const double*> lo_rows;      // slot -> lo row (lane or input)
  std::vector<const double*> hi_rows;      // slot -> hi row
  std::size_t capacity = 0;                // current row capacity (boxes)

  /// Pre-sizes for `slots`-instruction tapes over `n`-box waves.
  void Reserve(std::size_t slots, std::size_t n) {
    lo_lanes.reserve(slots * n);
    hi_lanes.reserve(slots * n);
    lo_rows.reserve(slots);
    hi_rows.reserve(slots);
  }

  /// Enclosure of slot `slot` in lane `k` after a sweep.
  Interval At(std::size_t slot, std::size_t k) const {
    return Interval(lo_rows[slot][k], hi_rows[slot][k]);
  }
};

/// Sound interval evaluation of the tape over `n` boxes in one sweep
/// (structure-of-arrays). `box_lo[v]` / `box_hi[v]` must point to `n`
/// contiguous lower/upper endpoints for environment slot `v` (only slots the
/// tape reads are dereferenced; unused entries may be null). After the call,
/// `scratch.At(slot, k)` is the enclosure of slot `slot` over box `k`; the
/// root enclosures live at `scratch.At(tape.root(), k)`.
///
/// Each instruction runs over all `n` boxes in a tight branch-light loop
/// before the next instruction, so per-instruction dispatch is amortized
/// n-fold and the lo/hi lanes of the ring operations auto-vectorize (the
/// one-ulp outward widening is integer bit-stepping, see interval.h).
/// Endpoints are bit-identical to running EvalTapeIntervalForward box by
/// box on the same tape; empty enclosures use the canonical [1, 0]
/// representation, exactly as the scalar evaluator produces them.
void EvalTapeIntervalBatch(const Tape& tape,
                           std::span<const double* const> box_lo,
                           std::span<const double* const> box_hi,
                           std::size_t n, TapeIntervalBatchScratch& scratch);

/// Copies lane `k` of a finished batched sweep into `slots` (resized to the
/// tape) — the per-slot forward enclosures EvalTapeIntervalForward would
/// have produced for that box, ready for the HC4 backward sweep.
void ExtractIntervalLane(const Tape& tape,
                         const TapeIntervalBatchScratch& scratch,
                         std::size_t k, std::vector<Interval>& slots);

}  // namespace xcv::expr
