#include "expr/intern.h"

#include <bit>
#include <functional>

#include "support/check.h"

namespace xcv::expr {

namespace {
std::size_t HashCombine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}
}  // namespace

std::size_t NodeInterner::KeyHash::operator()(const Key& k) const {
  std::size_t h = static_cast<std::size_t>(k.op);
  h = HashCombine(h, static_cast<std::size_t>(k.rel));
  h = HashCombine(h, std::hash<std::uint64_t>{}(k.value_bits));
  h = HashCombine(h, std::hash<int>{}(k.var_index));
  h = HashCombine(h, std::hash<std::string>{}(k.var_name));
  for (auto id : k.child_ids) h = HashCombine(h, id);
  return h;
}

NodeInterner& NodeInterner::Instance() {
  static NodeInterner* interner = new NodeInterner();  // never destroyed
  return *interner;
}

Expr NodeInterner::Intern(Op op, Rel rel, double value, int var_index,
                          const std::string& var_name,
                          std::vector<Expr> children) {
  Key key;
  key.op = op;
  key.rel = rel;
  key.value_bits = std::bit_cast<std::uint64_t>(value);
  key.var_index = var_index;
  key.var_name = var_name;
  key.child_ids.reserve(children.size());
  for (const Expr& c : children) {
    XCV_CHECK_MSG(!c.IsNull(), "null child passed to Intern");
    key.child_ids.push_back(c.id());
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it != table_.end()) return Expr(it->second);

  auto node = std::make_shared<Node>();
  node->op_ = op;
  node->rel_ = rel;
  node->value_ = value;
  node->var_index_ = var_index;
  node->var_name_ = var_name;
  node->children_ = std::move(children);
  node->id_ = next_id_++;
  XCV_CHECK_MSG(next_id_ != 0, "node id counter overflow");
  table_.emplace(std::move(key), node);
  return Expr(std::move(node));
}

std::size_t NodeInterner::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

// ---- Expr accessors that need Node's definition ------------------------------

std::uint32_t Expr::id() const { return node_->id(); }
Op Expr::op() const { return node_->op(); }
bool Expr::IsConstant() const { return node_->op() == Op::kConst; }
bool Expr::IsVariable() const { return node_->op() == Op::kVar; }

double Expr::ConstantValue() const {
  XCV_CHECK(IsConstant());
  return node_->value();
}

Expr Expr::Constant(double v) {
  return NodeInterner::Instance().Intern(Op::kConst, Rel::kLe, v, -1, "", {});
}

Expr Expr::Variable(const std::string& name, int index) {
  XCV_CHECK_MSG(index >= 0, "variable index must be non-negative");
  return NodeInterner::Instance().Intern(Op::kVar, Rel::kLe, 0.0, index, name,
                                         {});
}

}  // namespace xcv::expr
