// Operator vocabulary of the expression DAG.
//
// The set matches what density functional approximations need (the paper's
// §I: PBE ~300 ops, SCAN ~1000 ops incl. exp/log) plus the pieces the
// conditions layer adds (derivatives introduce div/pow/log chains) and the
// piecewise switch SCAN's α-interpolation requires (kIte).
#pragma once

#include <cstdint>
#include <string>

namespace xcv::expr {

enum class Op : std::uint8_t {
  kConst,     // leaf: double constant
  kVar,       // leaf: variable (index + name)
  kAdd,       // n-ary sum
  kMul,       // n-ary product
  kDiv,       // binary quotient
  kPow,       // binary power (exponent usually constant)
  kMin,       // binary minimum
  kMax,       // binary maximum
  kNeg,       // unary negation (kept explicit for readable printing)
  kExp,
  kLog,
  kSqrt,
  kCbrt,
  kSin,
  kCos,
  kAtan,
  kTanh,
  kAbs,
  kLambertW,  // principal branch W0
  kIte,       // if (child0 REL child1) then child2 else child3

  // Tape-only instructions, produced by the optimizer's strength reduction
  // of kPow with constant exponents (optimize.h). They never appear in
  // expression DAGs, so DAG walkers (printer, derivative, substitute) need
  // not handle them; tape evaluators and the HC4 backward sweep must.
  kSqr,   // x^2 as one multiply
  kPowN,  // x^n for integer n (payload in Instr::var), by repeated squaring
};

/// Comparison relation used by kIte conditions and boolean atoms.
/// Only Le/Lt are stored; Ge/Gt are normalized by operand swap.
enum class Rel : std::uint8_t { kLe, kLt };

/// Printable operator name ("add", "exp", ...).
std::string OpName(Op op);

/// True for exp/log/sin/cos/atan/tanh/lambertw — the transcendental subset
/// the paper calls out as the source of solver hardness.
bool IsTranscendental(Op op);

}  // namespace xcv::expr
