#include "expr/optimize.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "interval/lambert_w.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

// Value-numbering key: full structural identity of an instruction. Constant
// payloads compare by bit pattern so NaN and -0.0 are preserved and hashable.
struct InstrKey {
  Op op;
  Rel rel;
  std::uint64_t value_bits;
  int var;
  std::int32_t a, b, c, d;
  std::vector<std::int32_t> rest;

  bool operator==(const InstrKey& o) const {
    return op == o.op && rel == o.rel && value_bits == o.value_bits &&
           var == o.var && a == o.a && b == o.b && c == o.c && d == o.d &&
           rest == o.rest;
  }
};

struct InstrKeyHash {
  std::size_t operator()(const InstrKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(static_cast<std::uint64_t>(k.op));
    mix(static_cast<std::uint64_t>(k.rel));
    mix(k.value_bits);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.var)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.a)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.b)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.c)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.d)));
    for (auto s : k.rest)
      mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)));
    return static_cast<std::size_t>(h);
  }
};

InstrKey KeyOf(const Instr& ins) {
  InstrKey k{ins.op,
             ins.rel,
             std::bit_cast<std::uint64_t>(ins.value),
             ins.var,
             ins.a,
             ins.b,
             ins.c,
             ins.d,
             ins.rest};
  return k;
}

constexpr int kMaxReducedExponent = 64;

class TapeOptimizer {
 public:
  explicit TapeOptimizer(const Tape& in, OptimizeStats* stats)
      : in_(in), stats_(stats) {}

  Tape Run() {
    map_.reserve(in_.size());
    for (const Instr& ins : in_.instrs) map_.push_back(Rewrite(ins));
    return Finish();
  }

 private:
  // ---- Emission with value numbering ----------------------------------------

  bool IsConst(std::int32_t slot) const {
    return out_[static_cast<std::size_t>(slot)].op == Op::kConst;
  }
  double ConstVal(std::int32_t slot) const {
    return out_[static_cast<std::size_t>(slot)].value;
  }
  bool IsConstEq(std::int32_t slot, double v) const {
    return IsConst(slot) && ConstVal(slot) == v;
  }

  std::int32_t EmitRaw(Instr ins) {
    auto [it, inserted] =
        cse_.emplace(KeyOf(ins), static_cast<std::int32_t>(out_.size()));
    if (!inserted) {
      if (stats_) ++stats_->cse_hits;
      return it->second;
    }
    out_.push_back(std::move(ins));
    return it->second;
  }

  std::int32_t EmitConst(double v) {
    Instr ins;
    ins.op = Op::kConst;
    ins.value = v;
    return EmitRaw(std::move(ins));
  }

  std::int32_t EmitUnary(Op op, std::int32_t a, int payload = -1) {
    Instr ins;
    ins.op = op;
    ins.a = a;
    ins.var = payload;  // kPowN exponent
    return EmitRaw(std::move(ins));
  }

  std::int32_t EmitBinary(Op op, std::int32_t a, std::int32_t b) {
    Instr ins;
    ins.op = op;
    ins.a = a;
    ins.b = b;
    return EmitRaw(std::move(ins));
  }

  // ---- Strength reduction ---------------------------------------------------

  // x^k for non-negative integer k as pown/sqr (k == 1 aliases the base).
  std::int32_t EmitIntPow(std::int32_t base, int k) {
    XCV_DCHECK(k >= 1);
    if (k == 1) return base;
    if (k == 2) return EmitUnary(Op::kSqr, base);
    return EmitUnary(Op::kPowN, base, k);
  }

  // x^p for constant p. Returns the slot computing the reduced form, or -1
  // when no reduction applies (caller emits the generic kPow).
  //
  // Reductions cover integer and exact quarter-integer exponents (0.25,
  // 0.5, 0.75 fractional parts — these are exactly representable doubles,
  // so e.g. x^2.5 → x²·√x and x^-0.25 → 1/√(√x) denote the same real
  // function; thirds like 5/3 are NOT representable and are left alone).
  // The enhancement factors this engine spends its time in are dominated by
  // such powers: s², t², SCAN's (1+4y)^-1/4 switch, and the half-integer
  // chains their derivatives introduce.
  std::int32_t ReducePow(std::int32_t base, double p) {
    if (p == std::floor(p) && std::fabs(p) <= kMaxReducedExponent) {
      if (p == 2.0) return EmitUnary(Op::kSqr, base);
      return EmitUnary(Op::kPowN, base, static_cast<int>(p));
    }
    const double quadruple = 4.0 * p;
    if (quadruple != std::floor(quadruple) ||
        std::fabs(p) > kMaxReducedExponent)
      return -1;
    if (p < 0.0)
      return EmitBinary(Op::kDiv, EmitConst(1.0), ReducePow(base, -p));
    // p = k + f with f in {0.25, 0.5, 0.75}; x^p = x^k · x^f, and x^f is a
    // sqrt chain: x^0.5 = √x, x^0.25 = √√x, x^0.75 = √x · √√x. All factors
    // share the same natural domain x ≥ 0 as the original power.
    const int k = static_cast<int>(std::floor(p));
    const double f = p - std::floor(p);
    const std::int32_t root = EmitUnary(Op::kSqrt, base);
    std::int32_t frac;
    if (f == 0.5) {
      frac = root;
    } else if (f == 0.25) {
      frac = EmitUnary(Op::kSqrt, root);
    } else {
      frac = EmitBinary(Op::kMul, root, EmitUnary(Op::kSqrt, root));
    }
    return k == 0 ? frac : EmitBinary(Op::kMul, EmitIntPow(base, k), frac);
  }

  // ---- Constant folding -----------------------------------------------------

  // Folds an instruction whose operands are all constants, using exactly the
  // double semantics of EvalTape so scalar results are unchanged.
  double Fold(const Instr& ins, std::span<const std::int32_t> operands) {
    auto v = [&](std::size_t i) { return ConstVal(operands[i]); };
    switch (ins.op) {
      case Op::kAdd: {
        double s = v(0) + v(1);
        for (std::size_t i = 2; i < operands.size(); ++i) s += v(i);
        return s;
      }
      case Op::kMul: {
        double s = v(0) * v(1);
        for (std::size_t i = 2; i < operands.size(); ++i) s *= v(i);
        return s;
      }
      case Op::kDiv: return v(0) / v(1);
      case Op::kPow: return std::pow(v(0), v(1));
      case Op::kMin: return std::fmin(v(0), v(1));
      case Op::kMax: return std::fmax(v(0), v(1));
      case Op::kNeg: return -v(0);
      case Op::kExp: return std::exp(v(0));
      case Op::kLog: return std::log(v(0));
      case Op::kSqrt: return std::sqrt(v(0));
      case Op::kCbrt: return std::cbrt(v(0));
      case Op::kSin: return std::sin(v(0));
      case Op::kCos: return std::cos(v(0));
      case Op::kAtan: return std::atan(v(0));
      case Op::kTanh: return std::tanh(v(0));
      case Op::kAbs: return std::fabs(v(0));
      case Op::kLambertW: return LambertW0(v(0));
      case Op::kSqr: return v(0) * v(0);
      case Op::kPowN: return PowNScalar(v(0), ins.var);
      default:
        XCV_CHECK_MSG(false, "unfoldable op " << OpName(ins.op));
        return 0.0;
    }
  }

  // ---- Per-instruction rewrite ----------------------------------------------

  std::int32_t MapSlot(std::int32_t old_slot) const {
    XCV_DCHECK(old_slot >= 0 &&
               static_cast<std::size_t>(old_slot) < map_.size());
    return map_[static_cast<std::size_t>(old_slot)];
  }

  std::int32_t RewriteNary(const Instr& ins) {
    // Gather mapped operands.
    std::vector<std::int32_t> ops;
    ops.reserve(2 + ins.rest.size());
    ops.push_back(MapSlot(ins.a));
    ops.push_back(MapSlot(ins.b));
    for (auto r : ins.rest) ops.push_back(MapSlot(r));

    const bool is_add = ins.op == Op::kAdd;
    bool all_const = true;
    for (auto s : ops) all_const &= IsConst(s);
    if (all_const) {
      if (stats_) ++stats_->folded;
      return EmitConst(Fold(ins, ops));
    }

    // Combine constant operands (the builder keeps them leading, so the
    // fold order matches EvalTape's sequential accumulation), then drop the
    // neutral element. A zero constant absorbs a product, mirroring the
    // Mul smart constructor.
    double acc = is_add ? 0.0 : 1.0;
    bool has_const = false;
    std::vector<std::int32_t> kept;
    kept.reserve(ops.size());
    for (auto s : ops) {
      if (IsConst(s)) {
        acc = is_add ? acc + ConstVal(s) : acc * ConstVal(s);
        has_const = true;
      } else {
        kept.push_back(s);
      }
    }
    if (!is_add && has_const && acc == 0.0) {
      if (stats_) ++stats_->simplified;
      return EmitConst(0.0);
    }
    const bool dropped_neutral =
        has_const && acc == (is_add ? 0.0 : 1.0);
    if (has_const && !dropped_neutral) {
      // Mul(-1, ...) is the builder's spelling of negation; hoist the sign
      // into a dedicated kNeg and multiply one factor less. IEEE rounding is
      // sign-symmetric, so -(x*y) == (-1*x)*y bit for bit.
      if (!is_add && acc == -1.0 && !kept.empty()) {
        if (stats_) ++stats_->simplified;
        return EmitUnary(Op::kNeg, EmitNary(ins.op, std::move(kept)));
      }
      kept.insert(kept.begin(), EmitConst(acc));
    } else if (dropped_neutral && stats_) {
      ++stats_->simplified;
    }

    if (kept.empty()) return EmitConst(is_add ? 0.0 : 1.0);
    if (!is_add) CollapseAdjacentSquares(kept);
    return EmitNary(ins.op, std::move(kept));
  }

  /// mul(..., x, x, ...) → mul(..., sqr(x), ...). The builder's canonical
  /// operand order keeps duplicated factors adjacent (s·s, x·x in PW92), so
  /// this catches the hand-written squares the kPow reducer cannot see.
  void CollapseAdjacentSquares(std::vector<std::int32_t>& operands) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < operands.size(); ++w) {
      if (i + 1 < operands.size() && operands[i] == operands[i + 1]) {
        operands[w] = EmitUnary(Op::kSqr, operands[i]);
        if (stats_) ++stats_->simplified;
        i += 2;
      } else {
        operands[w] = operands[i];
        ++i;
      }
    }
    operands.resize(w);
  }

  /// Emits an n-ary add/mul over `operands` (a single operand is an alias).
  std::int32_t EmitNary(Op op, std::vector<std::int32_t> operands) {
    XCV_DCHECK(!operands.empty());
    if (operands.size() == 1) return operands[0];
    Instr ins;
    ins.op = op;
    ins.a = operands[0];
    ins.b = operands[1];
    if (operands.size() > 2)
      ins.rest.assign(operands.begin() + 2, operands.end());
    return EmitRaw(std::move(ins));
  }

  std::int32_t Rewrite(const Instr& ins) {
    switch (ins.op) {
      case Op::kConst:
        return EmitConst(ins.value);
      case Op::kVar: {
        Instr var;
        var.op = Op::kVar;
        var.var = ins.var;
        return EmitRaw(std::move(var));
      }
      case Op::kAdd:
      case Op::kMul:
        return RewriteNary(ins);
      case Op::kDiv: {
        const std::int32_t a = MapSlot(ins.a), b = MapSlot(ins.b);
        if (IsConst(a) && IsConst(b) && ConstVal(b) != 0.0) {
          if (stats_) ++stats_->folded;
          return EmitConst(ConstVal(a) / ConstVal(b));
        }
        if (IsConstEq(b, 1.0)) {
          if (stats_) ++stats_->simplified;
          return a;
        }
        if (IsConstEq(b, -1.0)) {
          if (stats_) ++stats_->simplified;
          return EmitUnary(Op::kNeg, a);
        }
        return EmitBinary(Op::kDiv, a, b);
      }
      case Op::kPow: {
        const std::int32_t a = MapSlot(ins.a), b = MapSlot(ins.b);
        if (IsConst(b)) {
          const double p = ConstVal(b);
          // pow(x, 0) == 1 and pow(x, 1) == x for every double x (IEEE
          // pow(NaN, 0) is 1) — same rewrites the Pow smart constructor
          // applies.
          if (p == 0.0) {
            if (stats_) ++stats_->simplified;
            return EmitConst(1.0);
          }
          if (p == 1.0) {
            if (stats_) ++stats_->simplified;
            return a;
          }
          if (IsConst(a)) {
            if (stats_) ++stats_->folded;
            return EmitConst(std::pow(ConstVal(a), p));
          }
          const std::int32_t reduced = ReducePow(a, p);
          if (reduced >= 0) {
            if (stats_) ++stats_->strength_reduced;
            return reduced;
          }
        } else if (IsConst(a)) {
          // Constant base, symbolic exponent: nothing safe to do.
        }
        return EmitBinary(Op::kPow, a, b);
      }
      case Op::kMin:
      case Op::kMax: {
        const std::int32_t a = MapSlot(ins.a), b = MapSlot(ins.b);
        if (a == b) {
          if (stats_) ++stats_->simplified;
          return a;
        }
        if (IsConst(a) && IsConst(b)) {
          if (stats_) ++stats_->folded;
          const std::int32_t slots[2] = {a, b};
          return EmitConst(Fold(ins, slots));
        }
        return EmitBinary(ins.op, a, b);
      }
      case Op::kNeg: {
        const std::int32_t a = MapSlot(ins.a);
        if (IsConst(a)) {
          if (stats_) ++stats_->folded;
          return EmitConst(-ConstVal(a));
        }
        if (out_[static_cast<std::size_t>(a)].op == Op::kNeg) {
          if (stats_) ++stats_->simplified;
          return out_[static_cast<std::size_t>(a)].a;
        }
        return EmitUnary(Op::kNeg, a);
      }
      case Op::kExp:
      case Op::kLog:
      case Op::kSqrt:
      case Op::kCbrt:
      case Op::kSin:
      case Op::kCos:
      case Op::kAtan:
      case Op::kTanh:
      case Op::kAbs:
      case Op::kLambertW:
      case Op::kSqr: {
        const std::int32_t a = MapSlot(ins.a);
        if (IsConst(a)) {
          if (stats_) ++stats_->folded;
          const std::int32_t slots[1] = {a};
          return EmitConst(Fold(ins, slots));
        }
        return EmitUnary(ins.op, a);
      }
      case Op::kPowN: {
        const std::int32_t a = MapSlot(ins.a);
        if (IsConst(a)) {
          if (stats_) ++stats_->folded;
          const std::int32_t slots[1] = {a};
          return EmitConst(Fold(ins, slots));
        }
        if (ins.var == 0) {
          if (stats_) ++stats_->simplified;
          return EmitConst(1.0);
        }
        if (ins.var == 1) {
          if (stats_) ++stats_->simplified;
          return a;
        }
        if (ins.var == 2) return EmitUnary(Op::kSqr, a);
        return EmitUnary(Op::kPowN, a, ins.var);
      }
      case Op::kIte: {
        const std::int32_t a = MapSlot(ins.a), b = MapSlot(ins.b);
        const std::int32_t c = MapSlot(ins.c), d = MapSlot(ins.d);
        if (c == d) {
          if (stats_) ++stats_->simplified;
          return c;
        }
        if (IsConst(a) && IsConst(b)) {
          if (stats_) ++stats_->simplified;
          const bool cond = ins.rel == Rel::kLe
                                ? ConstVal(a) <= ConstVal(b)
                                : ConstVal(a) < ConstVal(b);
          return cond ? c : d;
        }
        Instr ite;
        ite.op = Op::kIte;
        ite.rel = ins.rel;
        ite.a = a;
        ite.b = b;
        ite.c = c;
        ite.d = d;
        return EmitRaw(std::move(ite));
      }
    }
    XCV_CHECK_MSG(false, "unhandled op in optimizer");
    return -1;
  }

  // ---- Dead-slot elimination and renumbering --------------------------------

  Tape Finish() {
    const auto root = MapSlot(static_cast<std::int32_t>(in_.root()));
    std::vector<char> live(out_.size(), 0);
    std::vector<std::int32_t> work{root};
    while (!work.empty()) {
      const std::int32_t s = work.back();
      work.pop_back();
      auto& flag = live[static_cast<std::size_t>(s)];
      if (flag) continue;
      flag = 1;
      const Instr& ins = out_[static_cast<std::size_t>(s)];
      // kVar/kPowN payloads live in `var`, not a slot; only a..d and rest
      // reference instructions.
      if (ins.op == Op::kVar || ins.op == Op::kConst) continue;
      for (std::int32_t o : {ins.a, ins.b, ins.c, ins.d})
        if (o >= 0) work.push_back(o);
      for (std::int32_t o : ins.rest) work.push_back(o);
    }

    Tape result;
    result.num_env_slots = in_.num_env_slots;
    std::vector<std::int32_t> renumber(out_.size(), -1);
    for (std::size_t i = 0; i < out_.size(); ++i) {
      if (!live[i]) continue;
      renumber[i] = static_cast<std::int32_t>(result.instrs.size());
      Instr ins = std::move(out_[i]);
      if (ins.op != Op::kVar && ins.op != Op::kConst) {
        auto remap = [&renumber](std::int32_t& slot) {
          if (slot >= 0) slot = renumber[static_cast<std::size_t>(slot)];
        };
        remap(ins.a);
        remap(ins.b);
        remap(ins.c);
        remap(ins.d);
        for (auto& r : ins.rest) remap(r);
      }
      result.instrs.push_back(std::move(ins));
    }
    XCV_CHECK_MSG(renumber[static_cast<std::size_t>(root)] ==
                      static_cast<std::int32_t>(result.instrs.size()) - 1,
                  "optimizer root is not the final slot");

    result.var_slot.assign(static_cast<std::size_t>(result.num_env_slots),
                           -1);
    for (std::size_t i = 0; i < result.instrs.size(); ++i) {
      const Instr& ins = result.instrs[i];
      if (ins.op == Op::kVar)
        result.var_slot[static_cast<std::size_t>(ins.var)] =
            static_cast<std::int32_t>(i);
    }

    if (stats_) {
      stats_->size_before = in_.size();
      stats_->size_after = result.size();
      stats_->eliminated = out_.size() - result.size();
    }
    return result;
  }

  const Tape& in_;
  OptimizeStats* stats_;
  std::vector<Instr> out_;
  std::vector<std::int32_t> map_;
  std::unordered_map<InstrKey, std::int32_t, InstrKeyHash> cse_;
};

}  // namespace

Tape Optimize(const Tape& tape, OptimizeStats* stats) {
  XCV_CHECK(!tape.instrs.empty());
  if (stats) *stats = OptimizeStats{};
  return TapeOptimizer(tape, stats).Run();
}

Tape CompileOptimized(const Expr& e, OptimizeStats* stats) {
  return Optimize(Compile(e), stats);
}

std::uint64_t FnvMix(std::uint64_t h, std::uint64_t word) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xff;
    h *= kPrime;
  }
  return h;
}

std::uint64_t FnvMixString(std::uint64_t h, const std::string& s) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  h = FnvMix(h, s.size());
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kPrime;
  }
  return h;
}

std::uint64_t TapeFingerprint(const Tape& tape) {
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, tape.instrs.size());
  h = FnvMix(h, static_cast<std::uint64_t>(tape.num_env_slots));
  for (const Instr& in : tape.instrs) {
    h = FnvMix(h, static_cast<std::uint64_t>(in.op));
    h = FnvMix(h, static_cast<std::uint64_t>(in.rel));
    // Constants by bit pattern: NaN payloads and -0.0 stay distinct, exactly
    // as the optimizer's own value numbering treats them.
    h = FnvMix(h, std::bit_cast<std::uint64_t>(in.value));
    h = FnvMix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(in.var)));
    h = FnvMix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(in.a)));
    h = FnvMix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(in.b)));
    h = FnvMix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(in.c)));
    h = FnvMix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(in.d)));
    h = FnvMix(h, in.rest.size());
    for (std::int32_t r : in.rest)
      h = FnvMix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(r)));
  }
  return h;
}

}  // namespace xcv::expr
