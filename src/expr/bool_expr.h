// Quantifier-free boolean formulas over expression atoms.
//
// Atoms are normalized to "e ≤ 0" or "e < 0". Negation is applied eagerly
// (NNF): ¬(e ≤ 0) = (-e < 0) and ¬(e < 0) = (-e ≤ 0), so formulas are
// and/or trees of atoms. This is the formula class ψ the paper's XCEncoder
// produces — each local condition is a single atom, and the solver query is
// the conjunction of ¬ψ with the box constraints.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "interval/interval.h"

namespace xcv::expr {

class BoolNode;

/// Immutable boolean formula handle.
class BoolExpr {
 public:
  enum class Kind { kTrue, kFalse, kAtom, kAnd, kOr };

  BoolExpr() = default;
  bool IsNull() const { return node_ == nullptr; }

  Kind kind() const;
  /// Atom payload e (meaning "e rel 0"); requires kind()==kAtom.
  const Expr& atom() const;
  /// Atom relation; requires kind()==kAtom.
  Rel rel() const;
  /// Children; requires kAnd/kOr.
  const std::vector<BoolExpr>& children() const;

  std::string ToString() const;

  // ---- Factories ----
  static BoolExpr True();
  static BoolExpr False();
  /// e ≤ 0 (rel=kLe) or e < 0 (rel=kLt).
  static BoolExpr Atom(Expr e, Rel rel);
  /// a ≤ b as an atom (a - b ≤ 0).
  static BoolExpr Le(const Expr& a, const Expr& b);
  static BoolExpr Lt(const Expr& a, const Expr& b);
  static BoolExpr Ge(const Expr& a, const Expr& b);
  static BoolExpr Gt(const Expr& a, const Expr& b);
  static BoolExpr And(std::vector<BoolExpr> conjuncts);
  static BoolExpr Or(std::vector<BoolExpr> disjuncts);
  /// NNF negation (applied eagerly, result contains no negation nodes).
  static BoolExpr Not(const BoolExpr& b);

  bool operator==(const BoolExpr& other) const {
    return node_ == other.node_;
  }

  /// Wraps an existing node. BoolNode is an implementation detail; client
  /// code cannot produce one and should use the factories above.
  explicit BoolExpr(std::shared_ptr<const BoolNode> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<const BoolNode> node_;
};

/// Exact truth value at a point (IEEE double semantics). Used for model
/// validation — Algorithm 1's valid(x).
bool EvalBool(const BoolExpr& b, std::span<const double> env);

/// Truth value with slack: an atom "e ≤ 0" counts as satisfied when
/// e ≤ slack (and "e < 0" when e < slack). With slack > 0 this absorbs
/// floating-point noise in near-boundary residuals — the same role the
/// pass tolerance plays in the PB grid check. slack = 0 is EvalBool.
bool EvalBoolWithSlack(const BoolExpr& b, std::span<const double> env,
                       double slack);

/// Sound certainty tests over a box. CertainlyTrue ⇒ the formula holds for
/// every point of the box; CertainlyFalse ⇒ it fails for every point.
/// Both can be false simultaneously (unknown).
bool CertainlyTrue(const BoolExpr& b, std::span<const Interval> box);
bool CertainlyFalse(const BoolExpr& b, std::span<const Interval> box);

/// Collects the distinct atoms appearing in `b` (pre-order).
std::vector<BoolExpr> CollectAtoms(const BoolExpr& b);

}  // namespace xcv::expr
