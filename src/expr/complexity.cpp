// Structural metrics used to reproduce the paper's complexity claims
// (§I: "over 300 operations" for PBE correlation, "over 1000" for SCAN).
#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "expr/expr.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

constexpr std::uint64_t kCountCap = std::numeric_limits<std::uint64_t>::max() / 4;

std::uint64_t SaturatingAdd(std::uint64_t a, std::uint64_t b) {
  return std::min(kCountCap, a + std::min(kCountCap, b));
}

void CollectNodes(const Expr& e, std::unordered_set<std::uint32_t>& seen,
                  std::vector<const Node*>& nodes) {
  if (!seen.insert(e.id()).second) return;
  nodes.push_back(e.get());
  for (const Expr& c : e.node().children()) CollectNodes(c, seen, nodes);
}

}  // namespace

std::size_t OpCountDag(const Expr& e) {
  XCV_CHECK(!e.IsNull());
  std::unordered_set<std::uint32_t> seen;
  std::vector<const Node*> nodes;
  CollectNodes(e, seen, nodes);
  std::size_t ops = 0;
  for (const Node* n : nodes) {
    if (n->op() == Op::kConst || n->op() == Op::kVar) continue;
    // n-ary sums/products count as (arity - 1) binary operations, matching
    // what generated scalar code would contain.
    if (n->op() == Op::kAdd || n->op() == Op::kMul)
      ops += n->children().size() - 1;
    else
      ++ops;
  }
  return ops;
}

std::size_t OpCountTree(const Expr& e) {
  XCV_CHECK(!e.IsNull());
  std::unordered_map<std::uint32_t, std::uint64_t> memo;
  // Recursive with memo: count of fully expanded tree.
  auto count = [&](auto&& self, const Expr& x) -> std::uint64_t {
    auto it = memo.find(x.id());
    if (it != memo.end()) return it->second;
    const Node& n = x.node();
    std::uint64_t c = 0;
    if (n.op() != Op::kConst && n.op() != Op::kVar) {
      c = (n.op() == Op::kAdd || n.op() == Op::kMul)
              ? n.children().size() - 1
              : 1;
      for (const Expr& ch : n.children())
        c = SaturatingAdd(c, self(self, ch));
    }
    memo.emplace(x.id(), c);
    return c;
  };
  std::uint64_t total = count(count, e);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total, std::numeric_limits<std::size_t>::max()));
}

std::size_t Depth(const Expr& e) {
  XCV_CHECK(!e.IsNull());
  std::unordered_map<std::uint32_t, std::size_t> memo;
  auto depth = [&](auto&& self, const Expr& x) -> std::size_t {
    auto it = memo.find(x.id());
    if (it != memo.end()) return it->second;
    std::size_t d = 0;
    for (const Expr& c : x.node().children())
      d = std::max(d, self(self, c));
    d += 1;
    memo.emplace(x.id(), d);
    return d;
  };
  return depth(depth, e);
}

std::vector<Expr> FreeVariables(const Expr& e) {
  XCV_CHECK(!e.IsNull());
  std::unordered_set<std::uint32_t> seen;
  std::vector<const Node*> nodes;
  CollectNodes(e, seen, nodes);
  std::map<int, Expr> by_index;
  for (const Node* n : nodes)
    if (n->op() == Op::kVar)
      by_index.emplace(n->var_index(),
                       Expr::Variable(n->var_name(), n->var_index()));
  std::vector<Expr> vars;
  vars.reserve(by_index.size());
  for (auto& [idx, v] : by_index) vars.push_back(v);
  return vars;
}

bool HasTranscendental(const Expr& e) {
  XCV_CHECK(!e.IsNull());
  std::unordered_set<std::uint32_t> seen;
  std::vector<const Node*> nodes;
  CollectNodes(e, seen, nodes);
  for (const Node* n : nodes)
    if (IsTranscendental(n->op())) return true;
  return false;
}

}  // namespace xcv::expr
