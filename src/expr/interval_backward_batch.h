// Batched structure-of-arrays HC4 backward contraction.
//
// ContractTapeIntervalBatch is the wave-parallel counterpart of
// AtomContractor::ContractFromForward (src/solver/contractor.cpp): it takes
// the per-slot forward enclosures a finished EvalTapeIntervalBatch sweep
// left in its scratch and pushes inverse-operation narrowings root-to-leaves
// across every lane at once, one tape instruction per pass, with per-lane
// empty/fixpoint masking. The ring-operation projections run on the shared
// SIMD kernel layer (src/support/simd.h); the libm-bound inverse projections
// (pow roots, exp/log, tan/atanh) run the same scalar interval functions the
// scalar contractor calls, lane by lane.
//
// Bit-identity is load-bearing: for every lane, the narrowed box endpoints
// and the outcome are exactly what ContractFromForward produces for that box
// — at every wave width and ISA tier (see interval_backward_batch_test).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "expr/compile.h"

namespace xcv::expr {

// Per-lane outcome values, mirroring solver::ContractOutcome.
inline constexpr signed char kContractLaneEmpty = -1;       // box infeasible
inline constexpr signed char kContractLaneNoChange = 0;     // fixpoint
inline constexpr signed char kContractLaneContracted = 1;   // box narrowed

/// Reusable scratch for ContractTapeIntervalBatch: mutable copies of the
/// variable-slot rows (the forward scratch aliases the caller's const input
/// arrays for those), temp projection rows, and per-lane masks. Grows
/// monotonically; reuse one instance per thread across waves.
struct TapeBackwardBatchScratch {
  std::vector<double> var_lo, var_hi;  // narrowed variable-slot rows
  std::vector<double*> lo_rows, hi_rows;  // slot -> mutable enclosure row
  std::vector<double> t1_lo, t1_hi;    // accumulator row ("others", copies)
  std::vector<double> t2_lo, t2_hi;    // projection row
  std::vector<double> t3_lo, t3_hi;    // second capture / bound row
  std::vector<unsigned char> alive;    // per-lane liveness
  std::vector<unsigned char> cond;     // per-lane conditional-narrow mask
  std::vector<std::int32_t> operand_slots;  // n-ary add/mul positions
  std::size_t capacity = 0;            // current row capacity (boxes)

  /// Pre-sizes for `slots`-instruction tapes over `n`-box waves.
  void Reserve(std::size_t slots, std::size_t n) {
    var_lo.reserve(slots * n);
    var_hi.reserve(slots * n);
    lo_rows.reserve(slots);
    hi_rows.reserve(slots);
    t1_lo.reserve(n);
    t1_hi.reserve(n);
    t2_lo.reserve(n);
    t2_hi.reserve(n);
    t3_lo.reserve(n);
    t3_hi.reserve(n);
    alive.reserve(n);
    cond.reserve(n);
  }
};

/// Runs the HC4 backward sweep over `n` boxes at once.
///
/// `fwd` must hold a finished EvalTapeIntervalBatch sweep of `tape` over the
/// same `n` boxes; its non-variable rows are consumed (narrowed in place).
/// `box_lo[v]` / `box_hi[v]` point to the `n` mutable lower/upper endpoints
/// of environment slot `v` — the same endpoint arrays the forward sweep read
/// (entries for variables the tape does not read may be null). `active`
/// selects the participating lanes (null means all). On return, `outcome[j]`
/// is kContractLaneEmpty / kContractLaneNoChange / kContractLaneContracted
/// for each active lane — exactly the ContractOutcome the scalar
/// ContractFromForward returns for box `j` — and contracted lanes have their
/// box endpoints narrowed to the scalar result bit for bit. Inactive lanes
/// get outcome kContractLaneNoChange and their box entries are untouched.
/// Like the scalar sweep, a lane that turns out empty keeps any variable
/// narrowings folded before the infeasibility surfaced (callers discard such
/// boxes).
void ContractTapeIntervalBatch(const Tape& tape, TapeIntervalBatchScratch& fwd,
                               std::span<double* const> box_lo,
                               std::span<double* const> box_hi, std::size_t n,
                               const unsigned char* active,
                               signed char* outcome,
                               TapeBackwardBatchScratch& scratch);

}  // namespace xcv::expr
