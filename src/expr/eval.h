// Recursive evaluators over the expression DAG.
//
// EvalDouble is IEEE double evaluation — used for model validation
// (Algorithm 1's valid(x)) and the PB grid baseline. EvalInterval is the
// sound enclosure — used by the solver for all verified/UNSAT claims.
// Both memoize per distinct DAG node per call.
#pragma once

#include <span>

#include "expr/expr.h"
#include "interval/interval.h"

namespace xcv::expr {

/// Evaluates `e` at the point `env` (env[i] is the value of the variable
/// with index i). Out-of-range variable indices throw InternalError.
/// May return NaN/inf if the point is outside a function's domain.
double EvalDouble(const Expr& e, std::span<const double> env);

/// Sound interval enclosure of `e` over the box `box` (box[i] is the domain
/// of variable i). Empty inputs propagate to an empty result; out-of-domain
/// function arguments are clipped to the function's domain (matching the
/// solver's semantics where boxes are always within variable bounds).
Interval EvalInterval(const Expr& e, std::span<const Interval> box);

}  // namespace xcv::expr
