// Batched structure-of-arrays interval evaluation — the engine behind the
// ICP wave classifier (src/solver/icp.cpp).
//
// Layout mirrors EvalTapeBatch: one lo row and one hi row per tape slot,
// variable slots aliasing the caller's input arrays. Each instruction is
// applied to every lane before the next instruction runs. The ring
// operations (+, ×, neg, sqr, min, max, abs, const) are flattened into
// branch-free lane loops over raw endpoints that replicate the inline
// Interval operators bit for bit (same empty propagation, same NaN fixups,
// same one-ulp bit-stepped widening), so the compiler vectorizes them. The
// remaining operations (div, pow, libm transcendentals, ite) run the scalar
// interval functions lane by lane — they are libm-bound either way, and the
// batched dispatch still amortizes the per-instruction switch.
//
// Bit-identity with EvalTapeIntervalForward is load-bearing: the solver's
// verdicts must not depend on the wave width (see the interval_batch
// property tests).
#include <algorithm>
#include <cmath>

#include "expr/compile.h"
#include "interval/lambert_w.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Canonical empty representation, as produced by the Interval constructor.
constexpr double kEmptyLo = 1.0;
constexpr double kEmptyHi = 0.0;

inline bool LaneEmpty(double lo, double hi) { return !(lo <= hi); }

// Select-based fmin/fmax with std::fmin/fmax's exact NaN semantics (a NaN
// operand yields the other operand; NaN only if both are NaN). x86 has no
// single instruction for fmin, so the libm call blocks vectorization; these
// compile to compare/select chains that do vectorize. The one permitted
// deviation is the sign of a zero result when the operands are ±0 pairs —
// every use below feeds NextDown/NextUp or a clamp, which erase it, so lane
// results stay bit-identical to the scalar evaluator (the kMin/kMax lanes,
// whose results are stored unwidened, keep calling std::fmin/fmax).
inline double FMin(double x, double y) {
  double m = x < y ? x : y;
  m = std::isnan(x) ? y : m;
  m = std::isnan(y) ? x : m;
  return m;
}
inline double FMax(double x, double y) {
  double m = x > y ? x : y;
  m = std::isnan(x) ? y : m;
  m = std::isnan(y) ? x : m;
  return m;
}

// The lane kernels take __restrict rows: every call site passes physically
// distinct rows (an instruction's output row is never one of its operand
// rows, and the accumulate variants fold a *different* slot's row into the
// output), which is what lets GCC if-convert and vectorize the loops —
// without restrict the vectorizer gives up on possible aliasing.

// One interval addition lane, replicating operator+(Interval, Interval)
// endpoint for endpoint (empty propagation, NaN fixups, one-ulp widening).
inline void AddLane(double alo, double ahi, double blo, double bhi,
                    double& out_lo, double& out_hi) {
  const bool empty = LaneEmpty(alo, ahi) | LaneEmpty(blo, bhi);
  double lo = alo + blo;
  double hi = ahi + bhi;
  lo = std::isnan(lo) ? -kInf : lo;
  hi = std::isnan(hi) ? kInf : hi;
  out_lo = empty ? kEmptyLo : NextDown(lo);
  out_hi = empty ? kEmptyHi : NextUp(hi);
}

// One interval multiplication lane, replicating operator*(Interval, Interval).
inline void MulLane(double alo, double ahi, double blo, double bhi,
                    double& out_lo, double& out_hi) {
  const bool empty = LaneEmpty(alo, ahi) | LaneEmpty(blo, bhi);
  const double p1 = detail::MulEndpoint(alo, blo);
  const double p2 = detail::MulEndpoint(alo, bhi);
  const double p3 = detail::MulEndpoint(ahi, blo);
  const double p4 = detail::MulEndpoint(ahi, bhi);
  const double lo = FMin(FMin(p1, p2), FMin(p3, p4));
  const double hi = FMax(FMax(p1, p2), FMax(p3, p4));
  out_lo = empty ? kEmptyLo : NextDown(lo);
  out_hi = empty ? kEmptyHi : NextUp(hi);
}

void AddLanes(const double* __restrict alo, const double* __restrict ahi,
              const double* __restrict blo, const double* __restrict bhi,
              double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j)
    AddLane(alo[j], ahi[j], blo[j], bhi[j], rlo[j], rhi[j]);
}

// r += c in interval arithmetic (r is both input and output).
void AddAccumLanes(double* __restrict rlo, double* __restrict rhi,
                   const double* __restrict clo, const double* __restrict chi,
                   std::size_t n) {
  for (std::size_t j = 0; j < n; ++j)
    AddLane(rlo[j], rhi[j], clo[j], chi[j], rlo[j], rhi[j]);
}

void MulLanes(const double* __restrict alo, const double* __restrict ahi,
              const double* __restrict blo, const double* __restrict bhi,
              double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j)
    MulLane(alo[j], ahi[j], blo[j], bhi[j], rlo[j], rhi[j]);
}

// r *= c in interval arithmetic.
void MulAccumLanes(double* __restrict rlo, double* __restrict rhi,
                   const double* __restrict clo, const double* __restrict chi,
                   std::size_t n) {
  for (std::size_t j = 0; j < n; ++j)
    MulLane(rlo[j], rhi[j], clo[j], chi[j], rlo[j], rhi[j]);
}

// Vectorized pass of interval division, valid only for lanes whose divisor
// is strictly one-signed (or empty); operator/'s four-quotient branch with
// the NaN → entire fixup. Lanes with a zero-straddling divisor get garbage
// here and are overwritten by the scalar fixup pass in the kDiv case.
void DivLanes(const double* __restrict alo, const double* __restrict ahi,
              const double* __restrict blo, const double* __restrict bhi,
              double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const bool empty = LaneEmpty(alo[j], ahi[j]) | LaneEmpty(blo[j], bhi[j]);
    const double q1 = alo[j] / blo[j];
    const double q2 = alo[j] / bhi[j];
    const double q3 = ahi[j] / blo[j];
    const double q4 = ahi[j] / bhi[j];
    double lo = FMin(FMin(q1, q2), FMin(q3, q4));
    double hi = FMax(FMax(q1, q2), FMax(q3, q4));
    // Sequential (not nested) selects: GCC 12's if-converter gives up on the
    // nested-ternary form of this tail and the loop stays scalar.
    const bool entire = std::isnan(lo) | std::isnan(hi);
    lo = entire ? -kInf : NextDown(lo);
    hi = entire ? kInf : NextUp(hi);
    rlo[j] = empty ? kEmptyLo : lo;
    rhi[j] = empty ? kEmptyHi : hi;
  }
}

// Flattened Sqr lanes: |x| endpoints, zero floor when straddling, widen,
// clamp to nonnegative — the same steps as Sqr(Interval).
void SqrLanes(const double* __restrict alo, const double* __restrict ahi,
              double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = alo[j], hi = ahi[j];
    const bool empty = LaneEmpty(lo, hi);
    const double l = std::fabs(lo), h = std::fabs(hi);
    const bool straddles = (lo <= 0.0) & (0.0 <= hi);
    const double mlo = straddles ? 0.0 : FMin(l, h);
    const double mhi = FMax(l, h);
    rlo[j] = empty ? kEmptyLo : FMax(NextDown(mlo * mlo), 0.0);
    rhi[j] = empty ? kEmptyHi : FMin(NextUp(mhi * mhi), kInf);
  }
}

// Flattened Sqrt lanes: clamp to [0, inf), endpoint sqrt (one hardware
// instruction per endpoint under -fno-math-errno), one-ulp widening —
// Sqrt(Interval) including its empty-after-clamp normalization.
void SqrtLanes(const double* __restrict alo, const double* __restrict ahi,
               double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = alo[j], hi = ahi[j];
    // sqrt(max(lo, 0)) via select-after-sqrt: sqrt of a negative yields a
    // NaN that the select discards, and lo <= 0 maps to +0 exactly as the
    // clamp would; this keeps the loop in the if-converter's comfort zone.
    const double slo = std::sqrt(lo);
    const double dsel = lo > 0.0 ? slo : 0.0;
    const double shi = NextUp(std::sqrt(hi));
    const bool empty = LaneEmpty(lo, hi) | (hi < 0.0);
    rlo[j] = empty ? kEmptyLo : NextDown(dsel);
    rhi[j] = empty ? kEmptyHi : shi;
  }
}

void MinLanes(const double* __restrict alo, const double* __restrict ahi,
              const double* __restrict blo, const double* __restrict bhi,
              double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const bool empty = LaneEmpty(alo[j], ahi[j]) | LaneEmpty(blo[j], bhi[j]);
    rlo[j] = empty ? kEmptyLo : std::fmin(alo[j], blo[j]);
    rhi[j] = empty ? kEmptyHi : std::fmin(ahi[j], bhi[j]);
  }
}

void MaxLanes(const double* __restrict alo, const double* __restrict ahi,
              const double* __restrict blo, const double* __restrict bhi,
              double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const bool empty = LaneEmpty(alo[j], ahi[j]) | LaneEmpty(blo[j], bhi[j]);
    rlo[j] = empty ? kEmptyLo : std::fmax(alo[j], blo[j]);
    rhi[j] = empty ? kEmptyHi : std::fmax(ahi[j], bhi[j]);
  }
}

// operator-(Interval) lanes; passes the canonical empty through unchanged.
void NegLanes(const double* __restrict alo, const double* __restrict ahi,
              double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const bool empty = LaneEmpty(alo[j], ahi[j]);
    rlo[j] = empty ? kEmptyLo : -ahi[j];
    rhi[j] = empty ? kEmptyHi : -alo[j];
  }
}

// Abs(Interval) lanes: empties and nonnegative inputs pass through,
// negative inputs mirror, straddles hull to [0, max(-lo, hi)].
void AbsLanes(const double* __restrict alo, const double* __restrict ahi,
              double* __restrict rlo, double* __restrict rhi, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = alo[j], hi = ahi[j];
    const bool pass = LaneEmpty(lo, hi) | (lo >= 0.0);
    const bool mirror = !pass & (hi <= 0.0);
    rlo[j] = pass ? lo : (mirror ? -hi : 0.0);
    rhi[j] = pass ? hi : (mirror ? -lo : std::fmax(-lo, hi));
  }
}

}  // namespace

void EvalTapeIntervalBatch(const Tape& tape,
                           std::span<const double* const> box_lo,
                           std::span<const double* const> box_hi,
                           std::size_t n, TapeIntervalBatchScratch& scratch) {
  if (n == 0) return;
  const std::size_t slots = tape.size();
  if (scratch.capacity < n) {
    scratch.capacity = n;
    scratch.lo_lanes.clear();  // old contents are dead; avoid copying resizes
    scratch.hi_lanes.clear();
  }
  scratch.lo_lanes.resize(slots * scratch.capacity);
  scratch.hi_lanes.resize(slots * scratch.capacity);
  scratch.lo_rows.resize(slots);
  scratch.hi_rows.resize(slots);

  // Variable slots alias the caller's endpoint arrays directly (no copy);
  // every other slot owns a lane row pair.
  for (std::size_t i = 0; i < slots; ++i) {
    const Instr& ins = tape.instrs[i];
    if (ins.op == Op::kVar) {
      const auto var = static_cast<std::size_t>(ins.var);
      XCV_CHECK_MSG(ins.var >= 0 && var < box_lo.size() &&
                        var < box_hi.size() && box_lo[var] != nullptr &&
                        box_hi[var] != nullptr,
                    "tape variable index " << ins.var
                                           << " outside batch box inputs");
      scratch.lo_rows[i] = box_lo[var];
      scratch.hi_rows[i] = box_hi[var];
    } else {
      scratch.lo_rows[i] = scratch.lo_lanes.data() + i * scratch.capacity;
      scratch.hi_rows[i] = scratch.hi_lanes.data() + i * scratch.capacity;
    }
  }

  for (std::size_t i = 0; i < slots; ++i) {
    const Instr& ins = tape.instrs[i];
    if (ins.op == Op::kVar) continue;
    double* rlo = scratch.lo_lanes.data() + i * scratch.capacity;
    double* rhi = scratch.hi_lanes.data() + i * scratch.capacity;
    const auto row_lo = [&scratch](std::int32_t slot) {
      return scratch.lo_rows[static_cast<std::size_t>(slot)];
    };
    const auto row_hi = [&scratch](std::int32_t slot) {
      return scratch.hi_rows[static_cast<std::size_t>(slot)];
    };
    const double* alo = ins.a >= 0 ? row_lo(ins.a) : nullptr;
    const double* ahi = ins.a >= 0 ? row_hi(ins.a) : nullptr;
    const double* blo = ins.b >= 0 ? row_lo(ins.b) : nullptr;
    const double* bhi = ins.b >= 0 ? row_hi(ins.b) : nullptr;
    // Lane loop for ops with no flattened kernel: same scalar interval
    // functions the forward sweep calls, so endpoints match bit for bit.
    const auto unary = [&](auto&& f) {
      for (std::size_t j = 0; j < n; ++j) {
        const Interval r = f(Interval(alo[j], ahi[j]));
        rlo[j] = r.lo();
        rhi[j] = r.hi();
      }
    };
    switch (ins.op) {
      case Op::kConst: {
        // Interval(value) normalizes a NaN payload to the canonical empty.
        const Interval c(ins.value);
        for (std::size_t j = 0; j < n; ++j) {
          rlo[j] = c.lo();
          rhi[j] = c.hi();
        }
        break;
      }
      case Op::kVar:
        break;  // aliased above
      case Op::kAdd:
        AddLanes(alo, ahi, blo, bhi, rlo, rhi, n);
        for (auto rest : ins.rest)
          AddAccumLanes(rlo, rhi, row_lo(rest), row_hi(rest), n);
        break;
      case Op::kMul:
        MulLanes(alo, ahi, blo, bhi, rlo, rhi, n);
        for (auto rest : ins.rest)
          MulAccumLanes(rlo, rhi, row_lo(rest), row_hi(rest), n);
        break;
      case Op::kDiv:
        DivLanes(alo, ahi, blo, bhi, rlo, rhi, n);
        // Scalar fixup for zero-straddling divisors (rare on solver boxes):
        // operator/'s half-line and entire-line branches.
        for (std::size_t j = 0; j < n; ++j) {
          if (blo[j] <= 0.0 && bhi[j] >= 0.0) {
            const Interval r =
                Interval(alo[j], ahi[j]) / Interval(blo[j], bhi[j]);
            rlo[j] = r.lo();
            rhi[j] = r.hi();
          }
        }
        break;
      case Op::kPow:
        for (std::size_t j = 0; j < n; ++j) {
          const Interval r =
              Pow(Interval(alo[j], ahi[j]), Interval(blo[j], bhi[j]));
          rlo[j] = r.lo();
          rhi[j] = r.hi();
        }
        break;
      case Op::kMin:
        MinLanes(alo, ahi, blo, bhi, rlo, rhi, n);
        break;
      case Op::kMax:
        MaxLanes(alo, ahi, blo, bhi, rlo, rhi, n);
        break;
      case Op::kNeg:
        NegLanes(alo, ahi, rlo, rhi, n);
        break;
      case Op::kExp:
        unary([](const Interval& a) { return Exp(a); });
        break;
      case Op::kLog:
        unary([](const Interval& a) { return Log(a); });
        break;
      case Op::kSqrt:
        SqrtLanes(alo, ahi, rlo, rhi, n);
        break;
      case Op::kCbrt:
        unary([](const Interval& a) { return Cbrt(a); });
        break;
      case Op::kSin:
        unary([](const Interval& a) { return Sin(a); });
        break;
      case Op::kCos:
        unary([](const Interval& a) { return Cos(a); });
        break;
      case Op::kAtan:
        unary([](const Interval& a) { return Atan(a); });
        break;
      case Op::kTanh:
        unary([](const Interval& a) { return Tanh(a); });
        break;
      case Op::kAbs:
        AbsLanes(alo, ahi, rlo, rhi, n);
        break;
      case Op::kLambertW:
        unary([](const Interval& a) { return LambertW0(a); });
        break;
      case Op::kSqr:
        SqrLanes(alo, ahi, rlo, rhi, n);
        break;
      case Op::kPowN: {
        const auto p = static_cast<long long>(ins.var);
        unary([p](const Interval& a) { return PowInt(a, p); });
        break;
      }
      case Op::kIte: {
        const double* clo = row_lo(ins.c);
        const double* chi = row_hi(ins.c);
        const double* dlo = row_lo(ins.d);
        const double* dhi = row_hi(ins.d);
        for (std::size_t j = 0; j < n; ++j) {
          const Interval l(alo[j], ahi[j]), r(blo[j], bhi[j]);
          const bool can_true =
              ins.rel == Rel::kLe ? PossiblyLe(l, r) : PossiblyLt(l, r);
          const bool can_false =
              ins.rel == Rel::kLe ? PossiblyLt(r, l) : PossiblyLe(r, l);
          Interval out = Interval::Empty();
          if (can_true) out = out.Hull(Interval(clo[j], chi[j]));
          if (can_false) out = out.Hull(Interval(dlo[j], dhi[j]));
          rlo[j] = out.lo();
          rhi[j] = out.hi();
        }
        break;
      }
    }
  }
}

void ExtractIntervalLane(const Tape& tape,
                         const TapeIntervalBatchScratch& scratch,
                         std::size_t k, std::vector<Interval>& slots) {
  const std::size_t n = tape.size();
  slots.resize(n);
  for (std::size_t i = 0; i < n; ++i) slots[i] = scratch.At(i, k);
}

}  // namespace xcv::expr
