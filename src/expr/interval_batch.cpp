// Batched structure-of-arrays interval evaluation — the engine behind the
// ICP wave classifier (src/solver/icp.cpp).
//
// Layout mirrors EvalTapeBatch: one lo row and one hi row per tape slot,
// variable slots aliasing the caller's input arrays. Each instruction is
// applied to every lane before the next instruction runs. The ring
// operations (+, ×, neg, sqr, min, max, abs, const) dispatch to the shared
// SIMD kernel layer (src/support/simd.h) — branch-free lane loops over raw
// endpoints that replicate the inline Interval operators bit for bit (same
// empty propagation, same NaN fixups, same one-ulp bit-stepped widening),
// compiled per ISA tier and selected at runtime. The remaining operations
// (pow, libm transcendentals, ite) run the scalar interval functions lane by
// lane — they are libm-bound either way, and the batched dispatch still
// amortizes the per-instruction switch.
//
// Bit-identity with EvalTapeIntervalForward is load-bearing: the solver's
// verdicts must not depend on the wave width or the ISA tier (see the
// interval_batch property tests and the backward-batch dispatch tests).
#include <algorithm>
#include <cmath>

#include "expr/compile.h"
#include "interval/lambert_w.h"
#include "support/check.h"
#include "support/simd.h"

namespace xcv::expr {

void EvalTapeIntervalBatch(const Tape& tape,
                           std::span<const double* const> box_lo,
                           std::span<const double* const> box_hi,
                           std::size_t n, TapeIntervalBatchScratch& scratch) {
  if (n == 0) return;
  const simd::Kernels& K = simd::Active();
  const std::size_t slots = tape.size();
  if (scratch.capacity < n) {
    scratch.capacity = n;
    scratch.lo_lanes.clear();  // old contents are dead; avoid copying resizes
    scratch.hi_lanes.clear();
  }
  scratch.lo_lanes.resize(slots * scratch.capacity);
  scratch.hi_lanes.resize(slots * scratch.capacity);
  scratch.lo_rows.resize(slots);
  scratch.hi_rows.resize(slots);

  // Variable slots alias the caller's endpoint arrays directly (no copy);
  // every other slot owns a lane row pair.
  for (std::size_t i = 0; i < slots; ++i) {
    const Instr& ins = tape.instrs[i];
    if (ins.op == Op::kVar) {
      const auto var = static_cast<std::size_t>(ins.var);
      XCV_CHECK_MSG(ins.var >= 0 && var < box_lo.size() &&
                        var < box_hi.size() && box_lo[var] != nullptr &&
                        box_hi[var] != nullptr,
                    "tape variable index " << ins.var
                                           << " outside batch box inputs");
      scratch.lo_rows[i] = box_lo[var];
      scratch.hi_rows[i] = box_hi[var];
    } else {
      scratch.lo_rows[i] = scratch.lo_lanes.data() + i * scratch.capacity;
      scratch.hi_rows[i] = scratch.hi_lanes.data() + i * scratch.capacity;
    }
  }

  for (std::size_t i = 0; i < slots; ++i) {
    const Instr& ins = tape.instrs[i];
    if (ins.op == Op::kVar) continue;
    double* rlo = scratch.lo_lanes.data() + i * scratch.capacity;
    double* rhi = scratch.hi_lanes.data() + i * scratch.capacity;
    const auto row_lo = [&scratch](std::int32_t slot) {
      return scratch.lo_rows[static_cast<std::size_t>(slot)];
    };
    const auto row_hi = [&scratch](std::int32_t slot) {
      return scratch.hi_rows[static_cast<std::size_t>(slot)];
    };
    const double* alo = ins.a >= 0 ? row_lo(ins.a) : nullptr;
    const double* ahi = ins.a >= 0 ? row_hi(ins.a) : nullptr;
    const double* blo = ins.b >= 0 ? row_lo(ins.b) : nullptr;
    const double* bhi = ins.b >= 0 ? row_hi(ins.b) : nullptr;
    // Lane loop for ops with no flattened kernel: same scalar interval
    // functions the forward sweep calls, so endpoints match bit for bit.
    const auto unary = [&](auto&& f) {
      for (std::size_t j = 0; j < n; ++j) {
        const Interval r = f(Interval(alo[j], ahi[j]));
        rlo[j] = r.lo();
        rhi[j] = r.hi();
      }
    };
    switch (ins.op) {
      case Op::kConst: {
        // Interval(value) normalizes a NaN payload to the canonical empty.
        const Interval c(ins.value);
        for (std::size_t j = 0; j < n; ++j) {
          rlo[j] = c.lo();
          rhi[j] = c.hi();
        }
        break;
      }
      case Op::kVar:
        break;  // aliased above
      case Op::kAdd:
        K.add(alo, ahi, blo, bhi, rlo, rhi, n);
        for (auto rest : ins.rest)
          K.add_accum(rlo, rhi, row_lo(rest), row_hi(rest), n);
        break;
      case Op::kMul:
        K.mul(alo, ahi, blo, bhi, rlo, rhi, n);
        for (auto rest : ins.rest)
          K.mul_accum(rlo, rhi, row_lo(rest), row_hi(rest), n);
        break;
      case Op::kDiv:
        K.div(alo, ahi, blo, bhi, rlo, rhi, n);
        break;
      case Op::kPow:
        for (std::size_t j = 0; j < n; ++j) {
          const Interval r =
              Pow(Interval(alo[j], ahi[j]), Interval(blo[j], bhi[j]));
          rlo[j] = r.lo();
          rhi[j] = r.hi();
        }
        break;
      case Op::kMin:
        K.min(alo, ahi, blo, bhi, rlo, rhi, n);
        break;
      case Op::kMax:
        K.max(alo, ahi, blo, bhi, rlo, rhi, n);
        break;
      case Op::kNeg:
        K.neg(alo, ahi, rlo, rhi, n);
        break;
      case Op::kExp:
        unary([](const Interval& a) { return Exp(a); });
        break;
      case Op::kLog:
        unary([](const Interval& a) { return Log(a); });
        break;
      case Op::kSqrt:
        K.sqrt(alo, ahi, rlo, rhi, n);
        break;
      case Op::kCbrt:
        unary([](const Interval& a) { return Cbrt(a); });
        break;
      case Op::kSin:
        unary([](const Interval& a) { return Sin(a); });
        break;
      case Op::kCos:
        unary([](const Interval& a) { return Cos(a); });
        break;
      case Op::kAtan:
        unary([](const Interval& a) { return Atan(a); });
        break;
      case Op::kTanh:
        unary([](const Interval& a) { return Tanh(a); });
        break;
      case Op::kAbs:
        K.abs(alo, ahi, rlo, rhi, n);
        break;
      case Op::kLambertW:
        unary([](const Interval& a) { return LambertW0(a); });
        break;
      case Op::kSqr:
        K.sqr(alo, ahi, rlo, rhi, n);
        break;
      case Op::kPowN: {
        const auto p = static_cast<long long>(ins.var);
        unary([p](const Interval& a) { return PowInt(a, p); });
        break;
      }
      case Op::kIte: {
        const double* clo = row_lo(ins.c);
        const double* chi = row_hi(ins.c);
        const double* dlo = row_lo(ins.d);
        const double* dhi = row_hi(ins.d);
        for (std::size_t j = 0; j < n; ++j) {
          const Interval l(alo[j], ahi[j]), r(blo[j], bhi[j]);
          const bool can_true =
              ins.rel == Rel::kLe ? PossiblyLe(l, r) : PossiblyLt(l, r);
          const bool can_false =
              ins.rel == Rel::kLe ? PossiblyLt(r, l) : PossiblyLe(r, l);
          Interval out = Interval::Empty();
          if (can_true) out = out.Hull(Interval(clo[j], chi[j]));
          if (can_false) out = out.Hull(Interval(dlo[j], dhi[j]));
          rlo[j] = out.lo();
          rhi[j] = out.hi();
        }
        break;
      }
    }
  }
}

void ExtractIntervalLane(const Tape& tape,
                         const TapeIntervalBatchScratch& scratch,
                         std::size_t k, std::vector<Interval>& slots) {
  const std::size_t n = tape.size();
  slots.resize(n);
  for (std::size_t i = 0; i < n; ++i) slots[i] = scratch.At(i, k);
}

}  // namespace xcv::expr
