// Smart constructors: local simplification at build time.
//
// The rewrites here are value-preserving over the reals on the expression's
// natural domain (no rewrites like (a^p)^q → a^{pq} that change domains),
// because the solver's soundness depends on the built expression denoting
// the same function the caller wrote down.
#include <algorithm>
#include <cmath>

#include "expr/expr.h"
#include "expr/intern.h"
#include "interval/lambert_w.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

Expr MakeNode(Op op, std::vector<Expr> children, Rel rel = Rel::kLe) {
  return NodeInterner::Instance().Intern(op, rel, 0.0, -1, "",
                                         std::move(children));
}

bool IsConst(const Expr& e, double v) {
  return e.IsConstant() && e.ConstantValue() == v;
}

// Canonical child order for commutative n-ary ops: constants first, then by
// interned id. Improves hash-consing hit rate.
void SortCommutative(std::vector<Expr>& children) {
  std::stable_sort(children.begin(), children.end(),
                   [](const Expr& a, const Expr& b) {
                     if (a.IsConstant() != b.IsConstant())
                       return a.IsConstant();
                     return a.id() < b.id();
                   });
}

}  // namespace

Expr Add(std::vector<Expr> terms) {
  std::vector<Expr> flat;
  double const_sum = 0.0;
  bool has_const = false;
  for (const Expr& t : terms) {
    XCV_CHECK_MSG(!t.IsNull(), "null term in Add");
    if (t.op() == Op::kAdd) {
      for (const Expr& c : t.node().children()) {
        if (c.IsConstant()) {
          const_sum += c.ConstantValue();
          has_const = true;
        } else {
          flat.push_back(c);
        }
      }
    } else if (t.IsConstant()) {
      const_sum += t.ConstantValue();
      has_const = true;
    } else {
      flat.push_back(t);
    }
  }
  if (has_const && const_sum != 0.0)
    flat.push_back(Expr::Constant(const_sum));
  if (flat.empty()) return Expr::Constant(0.0);
  if (flat.size() == 1) return flat[0];
  SortCommutative(flat);
  return MakeNode(Op::kAdd, std::move(flat));
}

Expr Add(const Expr& a, const Expr& b) { return Add(std::vector<Expr>{a, b}); }

Expr Sub(const Expr& a, const Expr& b) { return Add(a, Neg(b)); }

Expr Mul(std::vector<Expr> factors) {
  std::vector<Expr> flat;
  double const_prod = 1.0;
  bool has_const = false;
  for (const Expr& f : factors) {
    XCV_CHECK_MSG(!f.IsNull(), "null factor in Mul");
    if (f.op() == Op::kMul) {
      for (const Expr& c : f.node().children()) {
        if (c.IsConstant()) {
          const_prod *= c.ConstantValue();
          has_const = true;
        } else {
          flat.push_back(c);
        }
      }
    } else if (f.IsConstant()) {
      const_prod *= f.ConstantValue();
      has_const = true;
    } else {
      flat.push_back(f);
    }
  }
  if (has_const && const_prod == 0.0) return Expr::Constant(0.0);
  if (has_const && const_prod != 1.0)
    flat.push_back(Expr::Constant(const_prod));
  if (flat.empty()) return Expr::Constant(1.0);
  if (flat.size() == 1) return flat[0];
  SortCommutative(flat);
  return MakeNode(Op::kMul, std::move(flat));
}

Expr Mul(const Expr& a, const Expr& b) { return Mul(std::vector<Expr>{a, b}); }

Expr Neg(const Expr& a) {
  if (a.IsConstant()) return Expr::Constant(-a.ConstantValue());
  return Mul(Expr::Constant(-1.0), a);
}

Expr Div(const Expr& a, const Expr& b) {
  XCV_CHECK(!a.IsNull() && !b.IsNull());
  if (a.IsConstant() && b.IsConstant() && b.ConstantValue() != 0.0)
    return Expr::Constant(a.ConstantValue() / b.ConstantValue());
  if (IsConst(b, 1.0)) return a;
  if (IsConst(b, -1.0)) return Neg(a);
  if (IsConst(a, 0.0)) return a;  // 0/b == 0 wherever b != 0
  return MakeNode(Op::kDiv, {a, b});
}

Expr Pow(const Expr& a, const Expr& b) {
  XCV_CHECK(!a.IsNull() && !b.IsNull());
  if (b.IsConstant()) {
    const double p = b.ConstantValue();
    if (p == 0.0) return Expr::Constant(1.0);
    if (p == 1.0) return a;
    if (a.IsConstant()) return Expr::Constant(std::pow(a.ConstantValue(), p));
  }
  return MakeNode(Op::kPow, {a, b});
}

Expr Pow(const Expr& a, double b) { return Pow(a, Expr::Constant(b)); }

Expr Min(const Expr& a, const Expr& b) {
  if (a == b) return a;
  if (a.IsConstant() && b.IsConstant())
    return Expr::Constant(std::fmin(a.ConstantValue(), b.ConstantValue()));
  return MakeNode(Op::kMin, {a, b});
}

Expr Max(const Expr& a, const Expr& b) {
  if (a == b) return a;
  if (a.IsConstant() && b.IsConstant())
    return Expr::Constant(std::fmax(a.ConstantValue(), b.ConstantValue()));
  return MakeNode(Op::kMax, {a, b});
}

namespace {
template <typename F>
Expr Unary(Op op, const Expr& a, F fold) {
  XCV_CHECK(!a.IsNull());
  if (a.IsConstant()) return Expr::Constant(fold(a.ConstantValue()));
  return MakeNode(op, {a});
}
}  // namespace

Expr ExpE(const Expr& a) {
  return Unary(Op::kExp, a, [](double v) { return std::exp(v); });
}

Expr LogE(const Expr& a) {
  if (a.op() == Op::kExp) return a.node().children()[0];  // log(exp x) == x
  return Unary(Op::kLog, a, [](double v) { return std::log(v); });
}

Expr SqrtE(const Expr& a) {
  return Unary(Op::kSqrt, a, [](double v) { return std::sqrt(v); });
}

Expr CbrtE(const Expr& a) {
  return Unary(Op::kCbrt, a, [](double v) { return std::cbrt(v); });
}

Expr SinE(const Expr& a) {
  return Unary(Op::kSin, a, [](double v) { return std::sin(v); });
}

Expr CosE(const Expr& a) {
  return Unary(Op::kCos, a, [](double v) { return std::cos(v); });
}

Expr AtanE(const Expr& a) {
  return Unary(Op::kAtan, a, [](double v) { return std::atan(v); });
}

Expr TanhE(const Expr& a) {
  return Unary(Op::kTanh, a, [](double v) { return std::tanh(v); });
}

Expr AbsE(const Expr& a) {
  return Unary(Op::kAbs, a, [](double v) { return std::fabs(v); });
}

Expr LambertW0E(const Expr& a) {
  return Unary(Op::kLambertW, a, [](double v) { return LambertW0(v); });
}

Expr Ite(const Expr& lhs, Rel rel, const Expr& rhs, const Expr& t,
         const Expr& f) {
  XCV_CHECK(!lhs.IsNull() && !rhs.IsNull() && !t.IsNull() && !f.IsNull());
  if (t == f) return t;
  if (lhs.IsConstant() && rhs.IsConstant()) {
    const double l = lhs.ConstantValue(), r = rhs.ConstantValue();
    const bool cond = rel == Rel::kLe ? l <= r : l < r;
    return cond ? t : f;
  }
  return NodeInterner::Instance().Intern(Op::kIte, rel, 0.0, -1, "",
                                         {lhs, rhs, t, f});
}

std::string OpName(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kVar: return "var";
    case Op::kAdd: return "add";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kPow: return "pow";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kNeg: return "neg";
    case Op::kExp: return "exp";
    case Op::kLog: return "log";
    case Op::kSqrt: return "sqrt";
    case Op::kCbrt: return "cbrt";
    case Op::kSin: return "sin";
    case Op::kCos: return "cos";
    case Op::kAtan: return "atan";
    case Op::kTanh: return "tanh";
    case Op::kAbs: return "abs";
    case Op::kLambertW: return "lambertw";
    case Op::kIte: return "ite";
    case Op::kSqr: return "sqr";
    case Op::kPowN: return "pown";
  }
  return "unknown";
}

bool IsTranscendental(Op op) {
  switch (op) {
    case Op::kExp:
    case Op::kLog:
    case Op::kSin:
    case Op::kCos:
    case Op::kAtan:
    case Op::kTanh:
    case Op::kLambertW:
      return true;
    default:
      return false;
  }
}

}  // namespace xcv::expr
