// Capture-free substitution of a variable by an expression, with DAG
// memoization. Used by the conditions layer to form F_c(∞) ≈ F_c|rs=100
// (EC6) and by tests.
#include <unordered_map>

#include "expr/expr.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

class Substituter {
 public:
  Substituter(const Expr& var, const Expr& replacement)
      : var_index_(var.node().var_index()), replacement_(replacement) {
    XCV_CHECK_MSG(var.IsVariable(), "Substitute: var must be a variable");
  }

  Expr Apply(const Expr& e) {
    auto it = memo_.find(e.id());
    if (it != memo_.end()) return it->second;
    Expr r = Rebuild(e);
    memo_.emplace(e.id(), r);
    return r;
  }

 private:
  Expr Rebuild(const Expr& e) {
    const Node& n = e.node();
    switch (n.op()) {
      case Op::kConst:
        return e;
      case Op::kVar:
        return n.var_index() == var_index_ ? replacement_ : e;
      default:
        break;
    }
    const auto& ch = n.children();
    std::vector<Expr> nc;
    nc.reserve(ch.size());
    bool changed = false;
    for (const Expr& c : ch) {
      Expr r = Apply(c);
      changed = changed || r != c;
      nc.push_back(r);
    }
    if (!changed) return e;
    switch (n.op()) {
      case Op::kAdd: return Add(std::move(nc));
      case Op::kMul: return Mul(std::move(nc));
      case Op::kDiv: return Div(nc[0], nc[1]);
      case Op::kPow: return Pow(nc[0], nc[1]);
      case Op::kMin: return Min(nc[0], nc[1]);
      case Op::kMax: return Max(nc[0], nc[1]);
      case Op::kNeg: return Neg(nc[0]);
      case Op::kExp: return ExpE(nc[0]);
      case Op::kLog: return LogE(nc[0]);
      case Op::kSqrt: return SqrtE(nc[0]);
      case Op::kCbrt: return CbrtE(nc[0]);
      case Op::kSin: return SinE(nc[0]);
      case Op::kCos: return CosE(nc[0]);
      case Op::kAtan: return AtanE(nc[0]);
      case Op::kTanh: return TanhE(nc[0]);
      case Op::kAbs: return AbsE(nc[0]);
      case Op::kLambertW: return LambertW0E(nc[0]);
      case Op::kIte: return Ite(nc[0], n.rel(), nc[1], nc[2], nc[3]);
      case Op::kConst:
      case Op::kVar:
        break;
    }
    XCV_CHECK_MSG(false, "unhandled op in Substitute");
    return Expr();
  }

  int var_index_;
  Expr replacement_;
  std::unordered_map<std::uint32_t, Expr> memo_;
};

}  // namespace

Expr Substitute(const Expr& e, const Expr& var, const Expr& replacement) {
  XCV_CHECK(!e.IsNull() && !replacement.IsNull());
  return Substituter(var, replacement).Apply(e);
}

}  // namespace xcv::expr
