#include "expr/compile.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "interval/lambert_w.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

class Compiler {
 public:
  Tape Run(const Expr& root) {
    Visit(root);
    for (auto& [index, slot] : var_slots_)
      tape_.num_env_slots = std::max(tape_.num_env_slots, index + 1);
    tape_.var_slot.assign(static_cast<std::size_t>(tape_.num_env_slots), -1);
    for (auto& [index, slot] : var_slots_)
      tape_.var_slot[static_cast<std::size_t>(index)] = slot;
    return std::move(tape_);
  }

 private:
  std::int32_t Visit(const Expr& e) {
    auto it = memo_.find(e.id());
    if (it != memo_.end()) return it->second;

    const Node& n = e.node();
    const auto& ch = n.children();
    // Children first (topological order).
    std::vector<std::int32_t> slots;
    slots.reserve(ch.size());
    for (const Expr& c : ch) slots.push_back(Visit(c));

    Instr instr;
    instr.op = n.op();
    instr.rel = n.rel();
    instr.value = n.value();
    instr.var = n.var_index();
    if (slots.size() > 0) instr.a = slots[0];
    if (slots.size() > 1) instr.b = slots[1];
    if (slots.size() > 2) instr.c = slots[2];
    if (slots.size() > 3) instr.d = slots[3];
    // kAdd/kMul may have arbitrary arity; kIte uses exactly a..d.
    if ((n.op() == Op::kAdd || n.op() == Op::kMul) && slots.size() > 2)
      instr.rest.assign(slots.begin() + 2, slots.end());

    const auto slot = static_cast<std::int32_t>(tape_.instrs.size());
    tape_.instrs.push_back(std::move(instr));
    memo_.emplace(e.id(), slot);
    if (n.op() == Op::kVar) var_slots_[n.var_index()] = slot;
    return slot;
  }

  Tape tape_;
  std::unordered_map<std::uint32_t, std::int32_t> memo_;
  std::unordered_map<int, std::int32_t> var_slots_;
};

}  // namespace

// Negative n via one final reciprocal. A few ulps off std::pow for large
// |n|, but value-preserving over the reals.
double PowNScalar(double x, int n) {
  if (n < 0) return 1.0 / PowNScalar(x, -n);
  double result = 1.0;
  for (double base = x; n > 0; n >>= 1, base *= base)
    if (n & 1) result *= base;
  return result;
}

Tape Compile(const Expr& e) {
  XCV_CHECK(!e.IsNull());
  return Compiler().Run(e);
}

double EvalTape(const Tape& tape, std::span<const double> env,
                TapeScratch& scratch) {
  auto& v = scratch.values;
  v.resize(tape.size());
  for (std::size_t i = 0; i < tape.size(); ++i) {
    const Instr& ins = tape.instrs[i];
    switch (ins.op) {
      case Op::kConst:
        v[i] = ins.value;
        break;
      case Op::kVar:
        XCV_CHECK_MSG(ins.var >= 0 &&
                          static_cast<std::size_t>(ins.var) < env.size(),
                      "tape variable index " << ins.var
                                             << " outside environment");
        v[i] = env[static_cast<std::size_t>(ins.var)];
        break;
      case Op::kAdd: {
        double s = v[ins.a] + v[ins.b];
        for (auto r : ins.rest) s += v[r];
        v[i] = s;
        break;
      }
      case Op::kMul: {
        double p = v[ins.a] * v[ins.b];
        for (auto r : ins.rest) p *= v[r];
        v[i] = p;
        break;
      }
      case Op::kDiv: v[i] = v[ins.a] / v[ins.b]; break;
      case Op::kPow: v[i] = std::pow(v[ins.a], v[ins.b]); break;
      case Op::kMin: v[i] = std::fmin(v[ins.a], v[ins.b]); break;
      case Op::kMax: v[i] = std::fmax(v[ins.a], v[ins.b]); break;
      case Op::kNeg: v[i] = -v[ins.a]; break;
      case Op::kExp: v[i] = std::exp(v[ins.a]); break;
      case Op::kLog: v[i] = std::log(v[ins.a]); break;
      case Op::kSqrt: v[i] = std::sqrt(v[ins.a]); break;
      case Op::kCbrt: v[i] = std::cbrt(v[ins.a]); break;
      case Op::kSin: v[i] = std::sin(v[ins.a]); break;
      case Op::kCos: v[i] = std::cos(v[ins.a]); break;
      case Op::kAtan: v[i] = std::atan(v[ins.a]); break;
      case Op::kTanh: v[i] = std::tanh(v[ins.a]); break;
      case Op::kAbs: v[i] = std::fabs(v[ins.a]); break;
      case Op::kLambertW: v[i] = LambertW0(v[ins.a]); break;
      case Op::kSqr: v[i] = v[ins.a] * v[ins.a]; break;
      case Op::kPowN: v[i] = PowNScalar(v[ins.a], ins.var); break;
      case Op::kIte: {
        const bool cond = ins.rel == Rel::kLe ? v[ins.a] <= v[ins.b]
                                              : v[ins.a] < v[ins.b];
        v[i] = cond ? v[ins.c] : v[ins.d];
        break;
      }
    }
  }
  return v.back();
}

Interval EvalTapeIntervalForward(const Tape& tape,
                                 std::span<const Interval> box,
                                 TapeScratch& scratch) {
  return EvalTapeIntervalForward(tape, box, scratch.intervals);
}

Interval EvalTapeIntervalForward(const Tape& tape,
                                 std::span<const Interval> box,
                                 std::vector<Interval>& v) {
  // Every slot is overwritten below, so a resize (no refill) suffices.
  v.resize(tape.size());
  for (std::size_t i = 0; i < tape.size(); ++i) {
    const Instr& ins = tape.instrs[i];
    switch (ins.op) {
      case Op::kConst:
        v[i] = Interval(ins.value);
        break;
      case Op::kVar:
        XCV_CHECK_MSG(ins.var >= 0 &&
                          static_cast<std::size_t>(ins.var) < box.size(),
                      "tape variable index " << ins.var << " outside box");
        v[i] = box[static_cast<std::size_t>(ins.var)];
        break;
      case Op::kAdd: {
        Interval s = v[ins.a] + v[ins.b];
        for (auto r : ins.rest) s = s + v[r];
        v[i] = s;
        break;
      }
      case Op::kMul: {
        Interval p = v[ins.a] * v[ins.b];
        for (auto r : ins.rest) p = p * v[r];
        v[i] = p;
        break;
      }
      case Op::kDiv: v[i] = v[ins.a] / v[ins.b]; break;
      case Op::kPow: v[i] = Pow(v[ins.a], v[ins.b]); break;
      case Op::kMin: v[i] = Min(v[ins.a], v[ins.b]); break;
      case Op::kMax: v[i] = Max(v[ins.a], v[ins.b]); break;
      case Op::kNeg: v[i] = -v[ins.a]; break;
      case Op::kExp: v[i] = Exp(v[ins.a]); break;
      case Op::kLog: v[i] = Log(v[ins.a]); break;
      case Op::kSqrt: v[i] = Sqrt(v[ins.a]); break;
      case Op::kCbrt: v[i] = Cbrt(v[ins.a]); break;
      case Op::kSin: v[i] = Sin(v[ins.a]); break;
      case Op::kCos: v[i] = Cos(v[ins.a]); break;
      case Op::kAtan: v[i] = Atan(v[ins.a]); break;
      case Op::kTanh: v[i] = Tanh(v[ins.a]); break;
      case Op::kAbs: v[i] = Abs(v[ins.a]); break;
      case Op::kLambertW: v[i] = LambertW0(v[ins.a]); break;
      case Op::kSqr: v[i] = Sqr(v[ins.a]); break;
      case Op::kPowN: v[i] = PowInt(v[ins.a], ins.var); break;
      case Op::kIte: {
        const Interval l = v[ins.a], r = v[ins.b];
        const bool can_true =
            ins.rel == Rel::kLe ? PossiblyLe(l, r) : PossiblyLt(l, r);
        const bool can_false =
            ins.rel == Rel::kLe ? PossiblyLt(r, l) : PossiblyLe(r, l);
        Interval out = Interval::Empty();
        if (can_true) out = out.Hull(v[ins.c]);
        if (can_false) out = out.Hull(v[ins.d]);
        v[i] = out;
        break;
      }
    }
  }
  return v.back();
}

Interval EvalTapeInterval(const Tape& tape, std::span<const Interval> box,
                          TapeScratch& scratch) {
  return EvalTapeIntervalForward(tape, box, scratch);
}

void EvalTapeBatch(const Tape& tape, std::span<const double* const> inputs,
                   std::size_t n, double* out, TapeBatchScratch& scratch) {
  if (n == 0) return;
  const std::size_t slots = tape.size();
  if (scratch.capacity < n) {
    scratch.capacity = n;
    scratch.lanes.clear();  // old contents are dead; avoid a copying resize
  }
  scratch.lanes.resize(slots * scratch.capacity);
  scratch.rows.resize(slots);

  // Variable slots alias the caller's input arrays directly (no copy); every
  // other slot owns a lane row.
  for (std::size_t i = 0; i < slots; ++i) {
    const Instr& ins = tape.instrs[i];
    if (ins.op == Op::kVar) {
      XCV_CHECK_MSG(ins.var >= 0 &&
                        static_cast<std::size_t>(ins.var) < inputs.size() &&
                        inputs[static_cast<std::size_t>(ins.var)] != nullptr,
                    "tape variable index " << ins.var
                                           << " outside batch inputs");
      scratch.rows[i] = inputs[static_cast<std::size_t>(ins.var)];
    } else {
      scratch.rows[i] = scratch.lanes.data() + i * scratch.capacity;
    }
  }

  for (std::size_t i = 0; i < slots; ++i) {
    const Instr& ins = tape.instrs[i];
    if (ins.op == Op::kVar) continue;
    double* r = scratch.lanes.data() + i * scratch.capacity;
    const double* a = ins.a >= 0 ? scratch.rows[static_cast<std::size_t>(ins.a)]
                                 : nullptr;
    const double* b = ins.b >= 0 ? scratch.rows[static_cast<std::size_t>(ins.b)]
                                 : nullptr;
    switch (ins.op) {
      case Op::kConst: {
        const double c = ins.value;
        for (std::size_t j = 0; j < n; ++j) r[j] = c;
        break;
      }
      case Op::kVar:
        break;  // aliased above
      case Op::kAdd:
        for (std::size_t j = 0; j < n; ++j) r[j] = a[j] + b[j];
        for (auto rest : ins.rest) {
          const double* c = scratch.rows[static_cast<std::size_t>(rest)];
          for (std::size_t j = 0; j < n; ++j) r[j] += c[j];
        }
        break;
      case Op::kMul:
        for (std::size_t j = 0; j < n; ++j) r[j] = a[j] * b[j];
        for (auto rest : ins.rest) {
          const double* c = scratch.rows[static_cast<std::size_t>(rest)];
          for (std::size_t j = 0; j < n; ++j) r[j] *= c[j];
        }
        break;
      case Op::kDiv:
        for (std::size_t j = 0; j < n; ++j) r[j] = a[j] / b[j];
        break;
      case Op::kPow:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::pow(a[j], b[j]);
        break;
      case Op::kMin:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::fmin(a[j], b[j]);
        break;
      case Op::kMax:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::fmax(a[j], b[j]);
        break;
      case Op::kNeg:
        for (std::size_t j = 0; j < n; ++j) r[j] = -a[j];
        break;
      case Op::kExp:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::exp(a[j]);
        break;
      case Op::kLog:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::log(a[j]);
        break;
      case Op::kSqrt:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::sqrt(a[j]);
        break;
      case Op::kCbrt:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::cbrt(a[j]);
        break;
      case Op::kSin:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::sin(a[j]);
        break;
      case Op::kCos:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::cos(a[j]);
        break;
      case Op::kAtan:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::atan(a[j]);
        break;
      case Op::kTanh:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::tanh(a[j]);
        break;
      case Op::kAbs:
        for (std::size_t j = 0; j < n; ++j) r[j] = std::fabs(a[j]);
        break;
      case Op::kLambertW:
        for (std::size_t j = 0; j < n; ++j) r[j] = LambertW0(a[j]);
        break;
      case Op::kSqr:
        for (std::size_t j = 0; j < n; ++j) r[j] = a[j] * a[j];
        break;
      case Op::kPowN: {
        const int p = ins.var;
        if (p == 2) {
          for (std::size_t j = 0; j < n; ++j) r[j] = a[j] * a[j];
        } else if (p == 3) {
          for (std::size_t j = 0; j < n; ++j) r[j] = a[j] * a[j] * a[j];
        } else if (p == -1) {
          for (std::size_t j = 0; j < n; ++j) r[j] = 1.0 / a[j];
        } else {
          for (std::size_t j = 0; j < n; ++j) r[j] = PowNScalar(a[j], p);
        }
        break;
      }
      case Op::kIte: {
        const double* c = scratch.rows[static_cast<std::size_t>(ins.c)];
        const double* d = scratch.rows[static_cast<std::size_t>(ins.d)];
        if (ins.rel == Rel::kLe) {
          for (std::size_t j = 0; j < n; ++j)
            r[j] = a[j] <= b[j] ? c[j] : d[j];
        } else {
          for (std::size_t j = 0; j < n; ++j) r[j] = a[j] < b[j] ? c[j] : d[j];
        }
        break;
      }
    }
  }

  const double* root = scratch.rows[static_cast<std::size_t>(tape.root())];
  std::copy(root, root + n, out);
}

}  // namespace xcv::expr
