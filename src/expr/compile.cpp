#include "expr/compile.h"

#include <cmath>
#include <unordered_map>

#include "interval/lambert_w.h"
#include "support/check.h"

namespace xcv::expr {

namespace {

class Compiler {
 public:
  Tape Run(const Expr& root) {
    Visit(root);
    for (auto& [index, slot] : var_slots_)
      tape_.num_env_slots = std::max(tape_.num_env_slots, index + 1);
    tape_.var_slot.assign(static_cast<std::size_t>(tape_.num_env_slots), -1);
    for (auto& [index, slot] : var_slots_)
      tape_.var_slot[static_cast<std::size_t>(index)] = slot;
    return std::move(tape_);
  }

 private:
  std::int32_t Visit(const Expr& e) {
    auto it = memo_.find(e.id());
    if (it != memo_.end()) return it->second;

    const Node& n = e.node();
    const auto& ch = n.children();
    // Children first (topological order).
    std::vector<std::int32_t> slots;
    slots.reserve(ch.size());
    for (const Expr& c : ch) slots.push_back(Visit(c));

    Instr instr;
    instr.op = n.op();
    instr.rel = n.rel();
    instr.value = n.value();
    instr.var = n.var_index();
    if (slots.size() > 0) instr.a = slots[0];
    if (slots.size() > 1) instr.b = slots[1];
    if (slots.size() > 2) instr.c = slots[2];
    if (slots.size() > 3) instr.d = slots[3];
    // kAdd/kMul may have arbitrary arity; kIte uses exactly a..d.
    if ((n.op() == Op::kAdd || n.op() == Op::kMul) && slots.size() > 2)
      instr.rest.assign(slots.begin() + 2, slots.end());

    const auto slot = static_cast<std::int32_t>(tape_.instrs.size());
    tape_.instrs.push_back(std::move(instr));
    memo_.emplace(e.id(), slot);
    if (n.op() == Op::kVar) var_slots_[n.var_index()] = slot;
    return slot;
  }

  Tape tape_;
  std::unordered_map<std::uint32_t, std::int32_t> memo_;
  std::unordered_map<int, std::int32_t> var_slots_;
};

}  // namespace

Tape Compile(const Expr& e) {
  XCV_CHECK(!e.IsNull());
  return Compiler().Run(e);
}

double EvalTape(const Tape& tape, std::span<const double> env,
                TapeScratch& scratch) {
  auto& v = scratch.values;
  v.resize(tape.size());
  for (std::size_t i = 0; i < tape.size(); ++i) {
    const Instr& ins = tape.instrs[i];
    switch (ins.op) {
      case Op::kConst:
        v[i] = ins.value;
        break;
      case Op::kVar:
        XCV_CHECK_MSG(ins.var >= 0 &&
                          static_cast<std::size_t>(ins.var) < env.size(),
                      "tape variable index " << ins.var
                                             << " outside environment");
        v[i] = env[static_cast<std::size_t>(ins.var)];
        break;
      case Op::kAdd: {
        double s = v[ins.a] + v[ins.b];
        for (auto r : ins.rest) s += v[r];
        v[i] = s;
        break;
      }
      case Op::kMul: {
        double p = v[ins.a] * v[ins.b];
        for (auto r : ins.rest) p *= v[r];
        v[i] = p;
        break;
      }
      case Op::kDiv: v[i] = v[ins.a] / v[ins.b]; break;
      case Op::kPow: v[i] = std::pow(v[ins.a], v[ins.b]); break;
      case Op::kMin: v[i] = std::fmin(v[ins.a], v[ins.b]); break;
      case Op::kMax: v[i] = std::fmax(v[ins.a], v[ins.b]); break;
      case Op::kNeg: v[i] = -v[ins.a]; break;
      case Op::kExp: v[i] = std::exp(v[ins.a]); break;
      case Op::kLog: v[i] = std::log(v[ins.a]); break;
      case Op::kSqrt: v[i] = std::sqrt(v[ins.a]); break;
      case Op::kCbrt: v[i] = std::cbrt(v[ins.a]); break;
      case Op::kSin: v[i] = std::sin(v[ins.a]); break;
      case Op::kCos: v[i] = std::cos(v[ins.a]); break;
      case Op::kAtan: v[i] = std::atan(v[ins.a]); break;
      case Op::kTanh: v[i] = std::tanh(v[ins.a]); break;
      case Op::kAbs: v[i] = std::fabs(v[ins.a]); break;
      case Op::kLambertW: v[i] = LambertW0(v[ins.a]); break;
      case Op::kIte: {
        const bool cond = ins.rel == Rel::kLe ? v[ins.a] <= v[ins.b]
                                              : v[ins.a] < v[ins.b];
        v[i] = cond ? v[ins.c] : v[ins.d];
        break;
      }
    }
  }
  return v.back();
}

Interval EvalTapeIntervalForward(const Tape& tape,
                                 std::span<const Interval> box,
                                 TapeScratch& scratch) {
  auto& v = scratch.intervals;
  v.assign(tape.size(), Interval::Empty());
  for (std::size_t i = 0; i < tape.size(); ++i) {
    const Instr& ins = tape.instrs[i];
    switch (ins.op) {
      case Op::kConst:
        v[i] = Interval(ins.value);
        break;
      case Op::kVar:
        XCV_CHECK_MSG(ins.var >= 0 &&
                          static_cast<std::size_t>(ins.var) < box.size(),
                      "tape variable index " << ins.var << " outside box");
        v[i] = box[static_cast<std::size_t>(ins.var)];
        break;
      case Op::kAdd: {
        Interval s = v[ins.a] + v[ins.b];
        for (auto r : ins.rest) s = s + v[r];
        v[i] = s;
        break;
      }
      case Op::kMul: {
        Interval p = v[ins.a] * v[ins.b];
        for (auto r : ins.rest) p = p * v[r];
        v[i] = p;
        break;
      }
      case Op::kDiv: v[i] = v[ins.a] / v[ins.b]; break;
      case Op::kPow: v[i] = Pow(v[ins.a], v[ins.b]); break;
      case Op::kMin: v[i] = Min(v[ins.a], v[ins.b]); break;
      case Op::kMax: v[i] = Max(v[ins.a], v[ins.b]); break;
      case Op::kNeg: v[i] = -v[ins.a]; break;
      case Op::kExp: v[i] = Exp(v[ins.a]); break;
      case Op::kLog: v[i] = Log(v[ins.a]); break;
      case Op::kSqrt: v[i] = Sqrt(v[ins.a]); break;
      case Op::kCbrt: v[i] = Cbrt(v[ins.a]); break;
      case Op::kSin: v[i] = Sin(v[ins.a]); break;
      case Op::kCos: v[i] = Cos(v[ins.a]); break;
      case Op::kAtan: v[i] = Atan(v[ins.a]); break;
      case Op::kTanh: v[i] = Tanh(v[ins.a]); break;
      case Op::kAbs: v[i] = Abs(v[ins.a]); break;
      case Op::kLambertW: v[i] = LambertW0(v[ins.a]); break;
      case Op::kIte: {
        const Interval l = v[ins.a], r = v[ins.b];
        const bool can_true =
            ins.rel == Rel::kLe ? PossiblyLe(l, r) : PossiblyLt(l, r);
        const bool can_false =
            ins.rel == Rel::kLe ? PossiblyLt(r, l) : PossiblyLe(r, l);
        Interval out = Interval::Empty();
        if (can_true) out = out.Hull(v[ins.c]);
        if (can_false) out = out.Hull(v[ins.d]);
        v[i] = out;
        break;
      }
    }
  }
  return v.back();
}

Interval EvalTapeInterval(const Tape& tape, std::span<const Interval> box,
                          TapeScratch& scratch) {
  return EvalTapeIntervalForward(tape, box, scratch);
}

}  // namespace xcv::expr
