#include "expr/bool_expr.h"

#include <unordered_set>

#include "expr/eval.h"
#include "support/check.h"

namespace xcv::expr {

class BoolNode {
 public:
  BoolExpr::Kind kind = BoolExpr::Kind::kTrue;
  Expr atom;          // kAtom
  Rel rel = Rel::kLe; // kAtom
  std::vector<BoolExpr> children;  // kAnd/kOr
};

BoolExpr::Kind BoolExpr::kind() const { return node_->kind; }

const Expr& BoolExpr::atom() const {
  XCV_CHECK(node_->kind == Kind::kAtom);
  return node_->atom;
}

Rel BoolExpr::rel() const {
  XCV_CHECK(node_->kind == Kind::kAtom);
  return node_->rel;
}

const std::vector<BoolExpr>& BoolExpr::children() const {
  XCV_CHECK(node_->kind == Kind::kAnd || node_->kind == Kind::kOr);
  return node_->children;
}

namespace {
BoolExpr MakeNode(std::shared_ptr<const BoolNode> n) {
  return BoolExpr(std::move(n));
}
}  // namespace

BoolExpr BoolExpr::True() {
  auto n = std::make_shared<BoolNode>();
  n->kind = Kind::kTrue;
  return MakeNode(std::move(n));
}

BoolExpr BoolExpr::False() {
  auto n = std::make_shared<BoolNode>();
  n->kind = Kind::kFalse;
  return MakeNode(std::move(n));
}

BoolExpr BoolExpr::Atom(Expr e, Rel rel) {
  XCV_CHECK(!e.IsNull());
  if (e.IsConstant()) {
    const double v = e.ConstantValue();
    const bool truth = rel == Rel::kLe ? v <= 0.0 : v < 0.0;
    return truth ? True() : False();
  }
  auto n = std::make_shared<BoolNode>();
  n->kind = Kind::kAtom;
  n->atom = std::move(e);
  n->rel = rel;
  return MakeNode(std::move(n));
}

BoolExpr BoolExpr::Le(const Expr& a, const Expr& b) {
  return Atom(Sub(a, b), Rel::kLe);
}
BoolExpr BoolExpr::Lt(const Expr& a, const Expr& b) {
  return Atom(Sub(a, b), Rel::kLt);
}
BoolExpr BoolExpr::Ge(const Expr& a, const Expr& b) { return Le(b, a); }
BoolExpr BoolExpr::Gt(const Expr& a, const Expr& b) { return Lt(b, a); }

BoolExpr BoolExpr::And(std::vector<BoolExpr> conjuncts) {
  std::vector<BoolExpr> flat;
  for (const BoolExpr& c : conjuncts) {
    XCV_CHECK(!c.IsNull());
    switch (c.kind()) {
      case Kind::kTrue: break;
      case Kind::kFalse: return False();
      case Kind::kAnd:
        for (const BoolExpr& g : c.children()) flat.push_back(g);
        break;
      default: flat.push_back(c);
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  auto n = std::make_shared<BoolNode>();
  n->kind = Kind::kAnd;
  n->children = std::move(flat);
  return MakeNode(std::move(n));
}

BoolExpr BoolExpr::Or(std::vector<BoolExpr> disjuncts) {
  std::vector<BoolExpr> flat;
  for (const BoolExpr& c : disjuncts) {
    XCV_CHECK(!c.IsNull());
    switch (c.kind()) {
      case Kind::kFalse: break;
      case Kind::kTrue: return True();
      case Kind::kOr:
        for (const BoolExpr& g : c.children()) flat.push_back(g);
        break;
      default: flat.push_back(c);
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  auto n = std::make_shared<BoolNode>();
  n->kind = Kind::kOr;
  n->children = std::move(flat);
  return MakeNode(std::move(n));
}

BoolExpr BoolExpr::Not(const BoolExpr& b) {
  XCV_CHECK(!b.IsNull());
  switch (b.kind()) {
    case Kind::kTrue: return False();
    case Kind::kFalse: return True();
    case Kind::kAtom:
      // ¬(e ≤ 0) == -e < 0;  ¬(e < 0) == -e ≤ 0.
      return Atom(Neg(b.atom()), b.rel() == Rel::kLe ? Rel::kLt : Rel::kLe);
    case Kind::kAnd: {
      std::vector<BoolExpr> neg;
      neg.reserve(b.children().size());
      for (const BoolExpr& c : b.children()) neg.push_back(Not(c));
      return Or(std::move(neg));
    }
    case Kind::kOr: {
      std::vector<BoolExpr> neg;
      neg.reserve(b.children().size());
      for (const BoolExpr& c : b.children()) neg.push_back(Not(c));
      return And(std::move(neg));
    }
  }
  XCV_CHECK_MSG(false, "unhandled kind in Not");
  return BoolExpr();
}

std::string BoolExpr::ToString() const {
  if (IsNull()) return "<null>";
  switch (kind()) {
    case Kind::kTrue: return "true";
    case Kind::kFalse: return "false";
    case Kind::kAtom:
      return "(" + atom().ToString() + (rel() == Rel::kLe ? " <= 0" : " < 0") +
             ")";
    case Kind::kAnd: {
      std::string s = "(and";
      for (const BoolExpr& c : children()) s += " " + c.ToString();
      return s + ")";
    }
    case Kind::kOr: {
      std::string s = "(or";
      for (const BoolExpr& c : children()) s += " " + c.ToString();
      return s + ")";
    }
  }
  return "<?>";
}

bool EvalBoolWithSlack(const BoolExpr& b, std::span<const double> env,
                       double slack) {
  XCV_CHECK(!b.IsNull());
  switch (b.kind()) {
    case BoolExpr::Kind::kTrue: return true;
    case BoolExpr::Kind::kFalse: return false;
    case BoolExpr::Kind::kAtom: {
      const double v = EvalDouble(b.atom(), env);
      // NaN fails both comparisons — an out-of-domain point satisfies no
      // atom, matching dReal's semantics on undefined terms.
      return b.rel() == Rel::kLe ? v <= slack : v < slack;
    }
    case BoolExpr::Kind::kAnd:
      for (const BoolExpr& c : b.children())
        if (!EvalBoolWithSlack(c, env, slack)) return false;
      return true;
    case BoolExpr::Kind::kOr:
      for (const BoolExpr& c : b.children())
        if (EvalBoolWithSlack(c, env, slack)) return true;
      return false;
  }
  XCV_CHECK_MSG(false, "unhandled kind in EvalBool");
  return false;
}

bool EvalBool(const BoolExpr& b, std::span<const double> env) {
  return EvalBoolWithSlack(b, env, 0.0);
}

bool CertainlyTrue(const BoolExpr& b, std::span<const Interval> box) {
  XCV_CHECK(!b.IsNull());
  switch (b.kind()) {
    case BoolExpr::Kind::kTrue: return true;
    case BoolExpr::Kind::kFalse: return false;
    case BoolExpr::Kind::kAtom: {
      const Interval v = EvalInterval(b.atom(), box);
      if (v.IsEmpty()) return false;  // nowhere defined — cannot certify
      return b.rel() == Rel::kLe ? v.hi() <= 0.0 : v.hi() < 0.0;
    }
    case BoolExpr::Kind::kAnd:
      for (const BoolExpr& c : b.children())
        if (!CertainlyTrue(c, box)) return false;
      return true;
    case BoolExpr::Kind::kOr:
      for (const BoolExpr& c : b.children())
        if (CertainlyTrue(c, box)) return true;
      return false;
  }
  return false;
}

bool CertainlyFalse(const BoolExpr& b, std::span<const Interval> box) {
  XCV_CHECK(!b.IsNull());
  switch (b.kind()) {
    case BoolExpr::Kind::kTrue: return false;
    case BoolExpr::Kind::kFalse: return true;
    case BoolExpr::Kind::kAtom: {
      const Interval v = EvalInterval(b.atom(), box);
      if (v.IsEmpty()) return false;
      return b.rel() == Rel::kLe ? v.lo() > 0.0 : v.lo() >= 0.0;
    }
    case BoolExpr::Kind::kAnd:
      for (const BoolExpr& c : b.children())
        if (CertainlyFalse(c, box)) return true;
      return false;
    case BoolExpr::Kind::kOr:
      for (const BoolExpr& c : b.children())
        if (!CertainlyFalse(c, box)) return false;
      return true;
  }
  return false;
}

std::vector<BoolExpr> CollectAtoms(const BoolExpr& b) {
  XCV_CHECK(!b.IsNull());
  std::vector<BoolExpr> atoms;
  auto walk = [&](auto&& self, const BoolExpr& x) -> void {
    switch (x.kind()) {
      case BoolExpr::Kind::kAtom:
        atoms.push_back(x);
        return;
      case BoolExpr::Kind::kAnd:
      case BoolExpr::Kind::kOr:
        for (const BoolExpr& c : x.children()) self(self, c);
        return;
      default:
        return;
    }
  };
  walk(walk, b);
  return atoms;
}

}  // namespace xcv::expr
