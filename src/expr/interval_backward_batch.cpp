// Batched HC4 backward contraction — see interval_backward_batch.h.
//
// The sweep mirrors AtomContractor::ContractFromForward instruction for
// instruction. Every projection an op makes is either a shared SIMD kernel
// call over all lanes (ring ops: add/mul/div/neg/min/max) or a per-lane run
// of the very scalar interval functions the scalar contractor calls (libm
// inverse projections) — so each lane's narrowing sequence is exactly the
// scalar one, and the output bits match at every wave width and ISA tier.
//
// Lane masking: a lane dies (outcome kContractLaneEmpty) the moment the
// scalar sweep would have returned kEmpty for its box. Dead lanes still flow
// through the vectorized kernel calls — their rows carry harmless garbage
// that nothing reads — but are skipped by every per-lane scalar loop and by
// the final box fold, so they cannot influence surviving lanes.
#include "expr/interval_backward_batch.h"

#include <cmath>
#include <cstring>

#include "interval/inverse.h"
#include "support/check.h"
#include "support/simd.h"

namespace xcv::expr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void ContractTapeIntervalBatch(const Tape& tape, TapeIntervalBatchScratch& fwd,
                               std::span<double* const> box_lo,
                               std::span<double* const> box_hi, std::size_t n,
                               const unsigned char* active,
                               signed char* outcome,
                               TapeBackwardBatchScratch& bs) {
  if (n == 0) return;
  const simd::Kernels& K = simd::Active();
  const std::size_t slots = tape.size();
  XCV_CHECK_MSG(fwd.capacity >= n && fwd.lo_rows.size() == slots,
                "backward sweep needs a finished forward sweep of width >= n");

  if (bs.capacity < n) {
    bs.capacity = n;
    bs.var_lo.clear();  // old contents are dead; avoid copying resizes
    bs.var_hi.clear();
  }
  std::size_t num_vars = 0;
  for (const Instr& ins : tape.instrs) num_vars += ins.op == Op::kVar;
  bs.var_lo.resize(num_vars * bs.capacity);
  bs.var_hi.resize(num_vars * bs.capacity);
  bs.lo_rows.resize(slots);
  bs.hi_rows.resize(slots);
  bs.t1_lo.resize(bs.capacity);
  bs.t1_hi.resize(bs.capacity);
  bs.t2_lo.resize(bs.capacity);
  bs.t2_hi.resize(bs.capacity);
  bs.t3_lo.resize(bs.capacity);
  bs.t3_hi.resize(bs.capacity);
  bs.alive.resize(bs.capacity);
  bs.cond.resize(bs.capacity);

  // Mutable per-slot enclosure rows: non-variable slots narrow the forward
  // scratch rows in place; variable slots (which alias the caller's input
  // arrays in the forward scratch) get private copies.
  std::size_t var_row = 0;
  for (std::size_t i = 0; i < slots; ++i) {
    if (tape.instrs[i].op == Op::kVar) {
      double* vl = bs.var_lo.data() + var_row * bs.capacity;
      double* vh = bs.var_hi.data() + var_row * bs.capacity;
      std::memcpy(vl, fwd.lo_rows[i], n * sizeof(double));
      std::memcpy(vh, fwd.hi_rows[i], n * sizeof(double));
      bs.lo_rows[i] = vl;
      bs.hi_rows[i] = vh;
      ++var_row;
    } else {
      bs.lo_rows[i] = fwd.lo_lanes.data() + i * fwd.capacity;
      bs.hi_rows[i] = fwd.hi_lanes.data() + i * fwd.capacity;
    }
  }

  unsigned char* alive = bs.alive.data();
  unsigned char* cond = bs.cond.data();
  double* t1_lo = bs.t1_lo.data();
  double* t1_hi = bs.t1_hi.data();
  double* t2_lo = bs.t2_lo.data();
  double* t2_hi = bs.t2_hi.data();
  double* t3_lo = bs.t3_lo.data();
  double* t3_hi = bs.t3_hi.data();

  std::size_t alive_count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    alive[j] = active != nullptr ? (active[j] != 0) : 1;
    outcome[j] = kContractLaneNoChange;
    alive_count += alive[j];
  }
  if (alive_count == 0) return;

  const auto die = [&](std::size_t j) {
    alive[j] = 0;
    outcome[j] = kContractLaneEmpty;
    --alive_count;
  };
  // v[slot] = v[slot].Intersect(projection) for one lane — the scalar
  // contractor's narrow() (rows always hold canonical interval bits, so the
  // Interval round-trip is lossless).
  const auto narrow_lane = [&bs](std::int32_t slot, std::size_t j,
                                 const Interval& projection) {
    double* slo = bs.lo_rows[static_cast<std::size_t>(slot)];
    double* shi = bs.hi_rows[static_cast<std::size_t>(slot)];
    const Interval next = Interval(slo[j], shi[j]).Intersect(projection);
    slo[j] = next.lo();
    shi[j] = next.hi();
  };

  // Root narrowing: the constraint set is (-inf, 0]; for strict < the
  // closure is the same, which is a sound over-approximation.
  {
    double* rlo = bs.lo_rows[static_cast<std::size_t>(tape.root())];
    double* rhi = bs.hi_rows[static_cast<std::size_t>(tape.root())];
    for (std::size_t j = 0; j < n; ++j) {
      if (!alive[j]) continue;
      const Interval root(rlo[j], rhi[j]);
      if (root.IsEmpty()) {
        die(j);
        continue;
      }
      const Interval narrowed = root.Intersect(Interval::NonPositive());
      if (narrowed.IsEmpty()) {
        die(j);
        continue;
      }
      rlo[j] = narrowed.lo();
      rhi[j] = narrowed.hi();
    }
    if (alive_count == 0) return;
  }

  // Reverse sweep. Because the tape is in topological order, every parent is
  // processed before its children, so narrowings flow root-to-leaves.
  // Projections from un-narrowed parents are expansive no-ops (sound).
  for (std::size_t k = slots; k-- > 0;) {
    const Instr& ins = tape.instrs[k];
    const double* zlo = bs.lo_rows[k];
    const double* zhi = bs.hi_rows[k];
    // The scalar sweep checks z for emptiness at every slot, whatever the
    // op; a lane dies here exactly when its box would have returned kEmpty.
    for (std::size_t j = 0; j < n; ++j)
      if (alive[j] && simd::LaneEmpty(zlo[j], zhi[j])) die(j);
    if (alive_count == 0) return;

    const auto row_lo = [&bs](std::int32_t slot) {
      return bs.lo_rows[static_cast<std::size_t>(slot)];
    };
    const auto row_hi = [&bs](std::int32_t slot) {
      return bs.hi_rows[static_cast<std::size_t>(slot)];
    };

    switch (ins.op) {
      case Op::kConst:
        for (std::size_t j = 0; j < n; ++j)
          if (alive[j] && !(zlo[j] <= ins.value && ins.value <= zhi[j]))
            die(j);
        break;
      case Op::kVar:
        break;  // handled after the sweep
      case Op::kAdd: {
        // Project each operand *position*: skip exactly one occurrence of
        // the slot, so duplicated operands (x + x) are handled soundly.
        bs.operand_slots.clear();
        bs.operand_slots.push_back(ins.a);
        bs.operand_slots.push_back(ins.b);
        bs.operand_slots.insert(bs.operand_slots.end(), ins.rest.begin(),
                                ins.rest.end());
        const auto& os = bs.operand_slots;
        for (std::size_t p = 0; p < os.size(); ++p) {
          for (std::size_t j = 0; j < n; ++j) {
            t1_lo[j] = 0.0;  // Interval(0.0)
            t1_hi[j] = 0.0;
          }
          for (std::size_t q = 0; q < os.size(); ++q)
            if (q != p) K.add_accum(t1_lo, t1_hi, row_lo(os[q]),
                                    row_hi(os[q]), n);
          K.sub(zlo, zhi, t1_lo, t1_hi, t2_lo, t2_hi, n);
          K.intersect_accum(row_lo(os[p]), row_hi(os[p]), t2_lo, t2_hi, n);
        }
        break;
      }
      case Op::kMul: {
        bs.operand_slots.clear();
        bs.operand_slots.push_back(ins.a);
        bs.operand_slots.push_back(ins.b);
        bs.operand_slots.insert(bs.operand_slots.end(), ins.rest.begin(),
                                ins.rest.end());
        const auto& os = bs.operand_slots;
        for (std::size_t p = 0; p < os.size(); ++p) {
          for (std::size_t j = 0; j < n; ++j) {
            t1_lo[j] = 1.0;  // Interval(1.0)
            t1_hi[j] = 1.0;
          }
          for (std::size_t q = 0; q < os.size(); ++q)
            if (q != p) K.mul_accum(t1_lo, t1_hi, row_lo(os[q]),
                                    row_hi(os[q]), n);
          // Scalar gate: if (!others.ContainsZero()) narrow(p, z / others).
          // An empty "others" fails ContainsZero too, and z / empty is
          // empty, so dividing every lane and masking the intersect is the
          // same narrowing.
          for (std::size_t j = 0; j < n; ++j)
            cond[j] = simd::LaneEmpty(t1_lo[j], t1_hi[j]) | (t1_lo[j] > 0.0) |
                      (t1_hi[j] < 0.0);
          K.div(zlo, zhi, t1_lo, t1_hi, t2_lo, t2_hi, n);
          K.intersect_accum_where(row_lo(os[p]), row_hi(os[p]), t2_lo, t2_hi,
                                  cond, n);
        }
        break;
      }
      case Op::kDiv: {
        // z = x / y  =>  x = z * y,  y = x / z (x read after its narrow).
        K.mul(zlo, zhi, row_lo(ins.b), row_hi(ins.b), t2_lo, t2_hi, n);
        K.intersect_accum(row_lo(ins.a), row_hi(ins.a), t2_lo, t2_hi, n);
        for (std::size_t j = 0; j < n; ++j)
          cond[j] = (zlo[j] > 0.0) | (zhi[j] < 0.0);  // !z.ContainsZero()
        K.div(row_lo(ins.a), row_hi(ins.a), zlo, zhi, t2_lo, t2_hi, n);
        K.intersect_accum_where(row_lo(ins.b), row_hi(ins.b), t2_lo, t2_hi,
                                cond, n);
        break;
      }
      case Op::kPow: {
        const Instr& exp_ins = tape.instrs[static_cast<std::size_t>(ins.b)];
        if (exp_ins.op != Op::kConst) break;  // symbolic exponent: skip
        const double p = exp_ins.value;
        const double* xlo = row_lo(ins.a);
        const double* xhi = row_hi(ins.a);
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          const Interval z(zlo[j], zhi[j]);
          const Interval x(xlo[j], xhi[j]);
          if (p == std::floor(p) && std::fabs(p) < 1e15) {
            const auto pn = static_cast<long long>(p);
            if (pn % 2 != 0) {
              // Odd power is a bijection on the reals.
              if (pn > 0)
                narrow_lane(ins.a, j, OddRoot(z, pn));
              else if (!z.ContainsZero())
                narrow_lane(ins.a, j, OddRoot(1.0 / z, -pn));
            } else if (pn > 0) {
              // Even power: |x| = z^{1/n}.
              const Interval r = Pow(z.Intersect(Interval::NonNegative()),
                                     1.0 / static_cast<double>(pn));
              if (r.IsEmpty()) {
                die(j);
                continue;
              }
              narrow_lane(ins.a, j, Interval(-r.hi(), r.hi()));
            } else if (x.lo() >= 0.0 && !z.ContainsZero()) {
              narrow_lane(ins.a, j,
                          Pow(1.0 / z, -1.0 / static_cast<double>(pn)));
            }
          } else if (x.lo() >= 0.0) {
            // Non-integer exponent: x >= 0 by domain; monotone in x.
            const Interval zz = z.Intersect(Interval::NonNegative());
            if (zz.IsEmpty()) {
              die(j);
              continue;
            }
            narrow_lane(ins.a, j, Pow(zz, 1.0 / p));
          }
        }
        break;
      }
      case Op::kMin: {
        // z = min(x, y): both operands are >= z.lo; if one operand cannot
        // attain the minimum, the other must equal z. x and y are captured
        // before the floor narrows them (raw endpoints, so an empty operand
        // compares through its canonical [1, 0] bits like the scalar .lo()).
        std::memcpy(t1_lo, row_lo(ins.a), n * sizeof(double));
        std::memcpy(t1_hi, row_hi(ins.a), n * sizeof(double));
        std::memcpy(t2_lo, row_lo(ins.b), n * sizeof(double));
        std::memcpy(t2_hi, row_hi(ins.b), n * sizeof(double));
        for (std::size_t j = 0; j < n; ++j) {
          t3_lo[j] = zlo[j];  // floor_iv = [z.lo, +inf)
          t3_hi[j] = kInf;
        }
        K.intersect_accum(row_lo(ins.a), row_hi(ins.a), t3_lo, t3_hi, n);
        K.intersect_accum(row_lo(ins.b), row_hi(ins.b), t3_lo, t3_hi, n);
        for (std::size_t j = 0; j < n; ++j) cond[j] = t2_lo[j] > zhi[j];
        K.intersect_accum_where(row_lo(ins.a), row_hi(ins.a), zlo, zhi, cond,
                                n);
        for (std::size_t j = 0; j < n; ++j) cond[j] = t1_lo[j] > zhi[j];
        K.intersect_accum_where(row_lo(ins.b), row_hi(ins.b), zlo, zhi, cond,
                                n);
        break;
      }
      case Op::kMax: {
        std::memcpy(t1_lo, row_lo(ins.a), n * sizeof(double));
        std::memcpy(t1_hi, row_hi(ins.a), n * sizeof(double));
        std::memcpy(t2_lo, row_lo(ins.b), n * sizeof(double));
        std::memcpy(t2_hi, row_hi(ins.b), n * sizeof(double));
        for (std::size_t j = 0; j < n; ++j) {
          t3_lo[j] = -kInf;  // ceil_iv = (-inf, z.hi]
          t3_hi[j] = zhi[j];
        }
        K.intersect_accum(row_lo(ins.a), row_hi(ins.a), t3_lo, t3_hi, n);
        K.intersect_accum(row_lo(ins.b), row_hi(ins.b), t3_lo, t3_hi, n);
        for (std::size_t j = 0; j < n; ++j) cond[j] = t2_hi[j] < zlo[j];
        K.intersect_accum_where(row_lo(ins.a), row_hi(ins.a), zlo, zhi, cond,
                                n);
        for (std::size_t j = 0; j < n; ++j) cond[j] = t1_hi[j] < zlo[j];
        K.intersect_accum_where(row_lo(ins.b), row_hi(ins.b), zlo, zhi, cond,
                                n);
        break;
      }
      case Op::kNeg:
        K.neg(zlo, zhi, t2_lo, t2_hi, n);
        K.intersect_accum(row_lo(ins.a), row_hi(ins.a), t2_lo, t2_hi, n);
        break;
      case Op::kExp:
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          const Interval x = Log(Interval(zlo[j], zhi[j]));
          if (x.IsEmpty()) {  // z entirely < 0
            die(j);
            continue;
          }
          narrow_lane(ins.a, j, x);
        }
        break;
      case Op::kLog:
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          narrow_lane(ins.a, j, Exp(Interval(zlo[j], zhi[j])));
        }
        break;
      case Op::kSqrt:
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          const Interval zz =
              Interval(zlo[j], zhi[j]).Intersect(Interval::NonNegative());
          if (zz.IsEmpty()) {
            die(j);
            continue;
          }
          narrow_lane(ins.a, j, Sqr(zz));
        }
        break;
      case Op::kCbrt:
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          narrow_lane(ins.a, j, PowInt(Interval(zlo[j], zhi[j]), 3));
        }
        break;
      case Op::kSin:
      case Op::kCos:
        break;  // multivalued inverse: no contraction
      case Op::kAtan:
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          narrow_lane(ins.a, j,
                      TanRestricted(Interval(zlo[j], zhi[j])
                                        .Intersect(Interval(
                                            -kHalfPi - 1e-12,
                                            kHalfPi + 1e-12))));
        }
        break;
      case Op::kTanh:
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          narrow_lane(ins.a, j,
                      AtanhRestricted(Interval(zlo[j], zhi[j])
                                          .Intersect(Interval(-1.0, 1.0))));
        }
        break;
      case Op::kAbs: {
        const double* xlo = row_lo(ins.a);
        const double* xhi = row_hi(ins.a);
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          const Interval zz =
              Interval(zlo[j], zhi[j]).Intersect(Interval::NonNegative());
          if (zz.IsEmpty()) {
            die(j);
            continue;
          }
          const Interval x(xlo[j], xhi[j]);
          Interval proj(-zz.hi(), zz.hi());
          if (x.lo() >= 0.0)
            proj = zz;
          else if (x.hi() <= 0.0)
            proj = -zz;
          narrow_lane(ins.a, j, proj);
        }
        break;
      }
      case Op::kLambertW:
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          // z = W0(x)  =>  x = z e^z; W0 range is [-1, inf).
          const Interval zz =
              Interval(zlo[j], zhi[j]).Intersect(Interval(-1.0, kInf));
          if (zz.IsEmpty()) {
            die(j);
            continue;
          }
          narrow_lane(ins.a, j, WidenUlps(zz * Exp(zz), 2));
        }
        break;
      case Op::kSqr:
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          // z = x²: |x| = sqrt(z), same projection as an even kPow.
          const Interval r = Sqrt(
              Interval(zlo[j], zhi[j]).Intersect(Interval::NonNegative()));
          if (r.IsEmpty()) {
            die(j);
            continue;
          }
          narrow_lane(ins.a, j, Interval(-r.hi(), r.hi()));
        }
        break;
      case Op::kPowN: {
        // Optimizer-produced integer power; mirror the constant-exponent
        // kPow projections (n is never 0 or 1 after optimization).
        const auto pn = static_cast<long long>(ins.var);
        const double* xlo = row_lo(ins.a);
        const double* xhi = row_hi(ins.a);
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          const Interval z(zlo[j], zhi[j]);
          if (pn % 2 != 0) {
            if (pn > 0) {
              narrow_lane(ins.a, j, OddRoot(z, pn));
            } else if (!z.ContainsZero()) {
              narrow_lane(ins.a, j, OddRoot(1.0 / z, -pn));
            }
          } else if (pn > 0) {
            const Interval r = Pow(z.Intersect(Interval::NonNegative()),
                                   1.0 / static_cast<double>(pn));
            if (r.IsEmpty()) {
              die(j);
              continue;
            }
            narrow_lane(ins.a, j, Interval(-r.hi(), r.hi()));
          } else if (Interval(xlo[j], xhi[j]).lo() >= 0.0 &&
                     !z.ContainsZero()) {
            narrow_lane(ins.a, j,
                        Pow(1.0 / z, -1.0 / static_cast<double>(pn)));
          }
        }
        break;
      }
      case Op::kIte: {
        // Contract the taken branch only when the condition is decided over
        // the (forward) operand enclosures; otherwise no contraction.
        const double* llo = row_lo(ins.a);
        const double* lhi = row_hi(ins.a);
        const double* rlo = row_lo(ins.b);
        const double* rhi = row_hi(ins.b);
        for (std::size_t j = 0; j < n; ++j) {
          if (!alive[j]) continue;
          const Interval l(llo[j], lhi[j]), r(rlo[j], rhi[j]);
          const bool can_true =
              ins.rel == Rel::kLe ? PossiblyLe(l, r) : PossiblyLt(l, r);
          const bool can_false =
              ins.rel == Rel::kLe ? PossiblyLt(r, l) : PossiblyLe(r, l);
          const Interval z(zlo[j], zhi[j]);
          if (can_true && !can_false) narrow_lane(ins.c, j, z);
          if (can_false && !can_true) narrow_lane(ins.d, j, z);
        }
        break;
      }
    }
  }

  // Fold narrowed variable slots back into the boxes. Lanes die at the first
  // empty intersection exactly like the scalar fold returns kEmpty there —
  // earlier variable writes persist (callers discard infeasible boxes).
  for (std::size_t var = 0; var < tape.var_slot.size(); ++var) {
    const std::int32_t slot = tape.var_slot[var];
    if (slot < 0) continue;
    const double* slo = bs.lo_rows[static_cast<std::size_t>(slot)];
    const double* shi = bs.hi_rows[static_cast<std::size_t>(slot)];
    double* blo = box_lo[var];
    double* bhi = box_hi[var];
    for (std::size_t j = 0; j < n; ++j) {
      if (!alive[j]) continue;
      const Interval before(blo[j], bhi[j]);
      const Interval after = before.Intersect(Interval(slo[j], shi[j]));
      if (after.IsEmpty()) {
        die(j);
        continue;
      }
      if (after != before) {
        blo[j] = after.lo();
        bhi[j] = after.hi();
        outcome[j] = kContractLaneContracted;
      }
    }
  }
}

}  // namespace xcv::expr
