// Hash-consing table for expression nodes (internal header).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace xcv::expr {

/// Process-wide intern table. All Node construction funnels through
/// Intern(), which returns the existing node for structurally identical
/// inputs. Thread-safe (single mutex; contention is negligible next to
/// solver work).
class NodeInterner {
 public:
  static NodeInterner& Instance();

  /// Returns the canonical Expr for the given structure.
  Expr Intern(Op op, Rel rel, double value, int var_index,
              const std::string& var_name, std::vector<Expr> children);

  /// Number of distinct nodes ever interned (monotone; for diagnostics).
  std::size_t Size() const;

 private:
  struct Key {
    Op op;
    Rel rel;
    std::uint64_t value_bits;
    int var_index;
    std::string var_name;
    std::vector<std::uint32_t> child_ids;
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const Node>, KeyHash> table_;
  std::uint32_t next_id_ = 1;
};

}  // namespace xcv::expr
