#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <system_error>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <unordered_set>

#include "api/job_spec.h"
#include "api/render.h"
#include "cache/verdict_cache.h"
#include "campaign/campaign.h"
#include "campaign/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/coordinator.h"
#include "shard/merge.h"
#include "shard/partition.h"
#include "support/check.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/strings.h"

namespace xcv::cli {

namespace {

using campaign::Campaign;
using campaign::CampaignOptions;
using campaign::CampaignResult;
using campaign::PairState;
using conditions::ConditionInfo;
using functionals::Functional;

constexpr const char* kUsage = R"(xcv — exact-condition verification campaigns

Usage:
  xcv verify [options]      Run a (functional x condition) verification matrix
  xcv resume [options]      Continue a campaign from --checkpoint
  xcv shard [options]       Partition a campaign checkpoint into K shard
                            checkpoints, one per node (resume each anywhere)
  xcv merge FILE... [opts]  Union resumed shard checkpoints (and their
                            verdict caches) back into one campaign report
  xcv coordinate [options]  Supervise an elastic K-node campaign on this
                            host: deal shards, launch resumes, watch
                            heartbeats, re-deal dead/straggler nodes' work,
                            merge — loops until every pair is done
  xcv cache-stats FILE      Inspect a verdict-cache file (read-only)
  xcv list                  List known functionals and conditions
  xcv info [--metrics]      Show SIMD tiers: compiled, CPU-supported, active
                            dispatch choice, and the XCV_SIMD override;
                            --metrics appends the process metrics registry
                            in Prometheus text form
  xcv help                  Show this help

Options (verify/resume):
  --functionals=SPEC   Comma list of functionals, family selectors (lda, gga,
                       mgga) or "all" (the five paper DFAs).      [all]
  --conditions=SPEC    Comma list of conditions, ranges (EC1..EC4) or "all".
                                                                  [all]
  --threads=N          Worker cap on the shared scheduler.        [1]
  --budget-seconds=S   Processing-time budget per pair; 0 = unlimited. [10]
  --split-threshold=T  Algorithm 1 split threshold t.             [0.3125]
  --solver-nodes=N     Per-solver-call node budget.               [30000]
  --delta=D            Solver precision delta.                    [0.001]
  --wave-width=K       Sibling boxes per batched interval sweep in the
                       solver (1 = scalar; results are identical at any
                       width, only the speed changes).            [8]
  --frontier=S         Frontier order: widest | suspect | fifo.   [widest]
  --checkpoint=PATH    Write checkpoints here (after every completed pair,
                       on Ctrl-C, and at the end); resume reads it.
  --cache=PATH         Persistent verdict cache: load it before the run (a
                       missing or corrupt file starts cold), record every
                       decided box, write it back at the end. Repeated
                       campaigns replay cached verdicts instead of solving;
                       reports are byte-identical either way. The XCV_CACHE
                       environment variable supplies a default path.
  --cache-readonly     Consult --cache but never write it back.
  --format=F           Final output: table | json | csv.          [table]
  --quiet              No per-pair progress on stderr.
  --heartbeat=PATH     (resume) Touch PATH every 250 ms while running, so a
                       supervisor can tell a working node from a hung one.
  --heartbeat-stream   (resume) Also print an XCV-HEARTBEAT line to stdout
                       every beat, so a remote supervisor can mirror
                       liveness through an ssh channel (the coordinator's
                       --nodes transport filters these lines out). The beat
                       stops before the final report is rendered, and with
                       --format=json|csv per-pair progress is suppressed
                       too — machine-read output stays clean.

Options (shard):
  --checkpoint=PATH    Campaign checkpoint to partition. When omitted, an
                       unrun campaign is built from --functionals,
                       --conditions and the solver flags above and sharded
                       before any solving.
  --shards=K           Number of shard checkpoints to write.      [2]
  --by=G               Granularity: pairs (whole pairs round-robin) or
                       frontier (open boxes dealt round-robin in the
                       campaign's frontier-priority order).       [pairs]
  --out-dir=DIR        Directory for shard-0.json .. shard-K-1.json.  [.]
  --rebalance          Re-mint origin_index provenance from the current pair
                       order, making this partition dense in its own
                       coordinates — use when re-dealing a merged mid-flight
                       checkpoint across a changed fleet.

Options (coordinate):
  --checkpoint=PATH    Campaign checkpoint to drive (created fresh from
                       --functionals/--conditions when absent); the
                       coordinator re-reads and rewrites it every epoch, so
                       killing and re-running the coordinator resumes.
  --shards=K           Fleet width: resume processes per epoch.     [2]
  --nodes=H1,H2,...    Run each node remotely over ssh/scp instead of
                       forking locally: one node per host (overrides
                       --shards), shard checkpoints and caches shipped out,
                       `xcv resume --heartbeat-stream` run there, results
                       fetched back. Hosts must accept non-interactive ssh
                       (BatchMode); --xcv-bin names the remote binary.
  --by=G               Partition granularity: pairs | frontier.    [pairs]
  --work-dir=DIR       Shard files, heartbeats, per-epoch node logs (kept
                       for the last 3 epochs), and the node-health ledger
                       nodes.json.                      [xcv-coordinate]
  --max-retries=N      Ordinary failures tolerated per shard per epoch
                       before its node gives up and the shard is re-dealt
                       across the surviving nodes.                  [2]
  --preemptible=N      Dedicated budget for preemption-style SIGKILLs,
                       consumed before --max-retries (WDL
                       preemptible_tries).                          [3]
  --quarantine-after=N Consecutive failures before a node is quarantined
                       (sits out epochs, then earns one probe).     [3]
  --launch-timeout=S   A launched node that never heartbeats within S
                       seconds is a transport failure.              [30]
  --rebalance-epoch=S  Deadline per epoch: stragglers still running after S
                       seconds are asked to checkpoint and stop, and their
                       remaining frontier is re-dealt across the whole
                       fleet. 0 = wait for every node.             [0]
  --lease=S            Heartbeat lease: a node silent for S seconds is
                       presumed hung and killed (its work since its last
                       checkpoint is re-dealt).                    [5]
  --max-epochs=N       Give up after N epochs.                     [64]
  --cache-dir=DIR      Give node k a persistent verdict cache at
                       DIR/cache-node-k.json.
  --kill-node=K@S      Chaos hook: SIGKILL node K, S seconds into epoch 0.
  --fault-node=K:SPEC  Chaos hook: run node K of epoch 0 with
                       XCV_FAULTS=SPEC armed.
  --xcv-bin=PATH       Binary to launch nodes with.    [this executable]
  --format=F           Render the converged report: table | json | csv.

Options (merge):
  -o PATH, --out=PATH  Write the merged checkpoint here (it is a valid,
                       resumable campaign checkpoint).
  --cache=LIST         Shard verdict-cache files to union (comma list; the
                       flag may also repeat, once per file). Conflicting
                       entries are rejected and dropped.
  --cache-out=PATH     Merged cache destination.       [merged-cache.json]
  --format=F           Render the merged report: table | json | csv.
  --quiet              No merge summary on stderr.
  --skip-corrupt       Skip unreadable/corrupt shard inputs with a warning
                       instead of failing; zero readable inputs is still an
                       error.

Observability (verify/resume/coordinate):
  --trace=FILE         Record a structured span timeline of the run (job ->
                       pair -> solve -> classify/contract, coordinator
                       epochs and events) and write it to FILE as Chrome
                       trace_event JSON — open in chrome://tracing or
                       Perfetto. The XCV_TRACE environment variable is the
                       same thing; XCV_TRACE_CLOCK=fixed swaps in a
                       deterministic counter clock for replay diffing.
                       Verdicts and reports are byte-identical with tracing
                       on or off. Set XCV_NO_METRICS=1 to disable the
                       metrics registry (`xcv info --metrics` shows it).

Fault injection (any command, for robustness testing):
  --faults=SPEC        Arm named fault points for this process, e.g.
                       --faults=checkpoint.save.short-write@2. The
                       XCV_FAULTS environment variable is the same thing;
                       `xcv info` lists every registered point; see README
                       "Fault tolerance" for the grammar.

Unrecognized --flags are usage errors: the message names the flag and
suggests the nearest recognized spelling (e.g. --max-nodes -> try
--solver-nodes).

Exit codes: 0 success, 1 coordinate gave up, 2 usage error, 70 injected
fault crash, 126/127 node launch failure (cannot exec), 130 cancelled
(checkpoint saved).
)";

// Signal handler target: only an atomic flag is touched in the handler.
Campaign* volatile g_campaign = nullptr;

void HandleSignal(int) {
  Campaign* c = g_campaign;
  if (c != nullptr) c->RequestCancel();
}

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;
  /// Non-flag arguments after the command (merge's shard files,
  /// cache-stats' cache file). Commands that take none reject them.
  std::vector<std::string> positionals;
};

std::optional<ParsedArgs> ParseArgs(int argc, const char* const* argv) {
  ParsedArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string key = arg.substr(2), value = "true";
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      }
      // For merge, --cache accumulates: repeated flags build the same comma
      // list as --cache=a.json,b.json, so per-node cache files can be
      // listed one flag at a time. Everywhere else the usual last-flag-wins
      // applies (verify/resume take exactly one cache path).
      if (key == "cache" && args.command == "merge" &&
          args.flags.count(key) > 0)
        value = args.flags[key] + "," + value;
      args.flags[key] = value;
    } else if (arg == "-o" && args.command == "merge") {
      // Merge's one short flag, spelled like every other merge/diff tool;
      // --out=PATH is the long form. Other commands treat -o as the stray
      // argument it is.
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xcv: -o needs a path argument\n");
        return std::nullopt;
      }
      args.flags["out"] = argv[++i];
    } else if (args.command.empty()) {
      args.command = arg;
    } else {
      args.positionals.push_back(std::move(arg));
    }
  }
  if (args.command.empty()) args.command = "help";
  return args;
}

/// Commands without positional operands reject stray arguments loudly
/// instead of silently ignoring a typo.
bool RejectPositionals(const ParsedArgs& args) {
  if (args.positionals.empty()) return false;
  std::fprintf(stderr, "xcv %s: unexpected argument '%s'\n",
               args.command.c_str(), args.positionals.front().c_str());
  return true;
}

double FlagDouble(const ParsedArgs& args, const std::string& key,
                  double fallback) {
  const auto it = args.flags.find(key);
  if (it == args.flags.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  XCV_CHECK_MSG(end != it->second.c_str() && *end == '\0' && v >= 0.0,
                "--" << key << " needs a non-negative number, got '"
                     << it->second << "'");
  return v;
}

/// Flags every command accepts on top of api::ApplyFlags' spec keys:
/// process-wide fault arming (Main) and trace capture (TraceSession).
const std::vector<std::string> kGlobalExtraFlags = {"faults", "trace"};

/// Compiles the command's flags down to a JobSpec over `base` (the paper
/// defaults, or a checkpoint's recorded options on resume) and validates
/// it — the one option-assembly path, shared with the daemon (src/api/).
/// `command_flags` lists the keys this command consumes itself (resume's
/// heartbeat, coordinate's fleet knobs); anything else unrecognized is a
/// usage error with a nearest-flag suggestion (api::ApplyFlags).
api::JobSpec SpecFromFlags(const ParsedArgs& args, api::JobSpec base,
                           std::vector<std::string> command_flags = {}) {
  command_flags.insert(command_flags.end(), kGlobalExtraFlags.begin(),
                       kGlobalExtraFlags.end());
  api::ApplyFlags(args.flags, base, command_flags);
  api::ValidateJobSpec(base);
  return base;
}

/// RAII trace capture for one command run: arms the global recorder when
/// --trace=FILE (or XCV_TRACE=FILE) names an output, writes the Chrome
/// trace_event JSON there on scope exit — including the exception path, so
/// a crashed run still leaves its timeline behind. XCV_TRACE_CLOCK=fixed
/// swaps in the deterministic counter clock (obs/trace.h).
class TraceSession {
 public:
  explicit TraceSession(const ParsedArgs& args) {
    if (const auto it = args.flags.find("trace"); it != args.flags.end()) {
      path_ = it->second;
    } else if (const char* env = std::getenv("XCV_TRACE");
               env != nullptr && *env != '\0') {
      path_ = env;
    }
    XCV_CHECK_MSG(args.flags.count("trace") == 0 || !path_.empty(),
                  "--trace needs a file path (--trace=FILE)");
    if (!path_.empty()) obs::TraceRecorder::Global().Start();
  }
  ~TraceSession() {
    if (path_.empty()) return;
    std::string error;
    if (!obs::TraceRecorder::Global().StopToFile(path_, &error))
      std::fprintf(stderr, "xcv: could not write trace file %s: %s\n",
                   path_.c_str(), error.c_str());
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
};

/// Runs the campaign with signal-cancel wiring and optional per-pair
/// progress on stderr. Rendering is a separate step (RenderResult) so
/// callers can stop side streams — the resume heartbeat — in between.
CampaignResult ExecuteCampaign(Campaign& campaign,
                               const api::OutputPolicy& policy) {
  g_campaign = &campaign;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  Campaign::ProgressFn progress;
  if (policy.progress) {
    progress = [](const PairState& p, std::size_t completed,
                  std::size_t total) {
      std::fprintf(stderr, "[xcv] %zu/%zu %s x %s: %s (%zu leaves, %llu "
                           "calls, %.2fs)\n",
                   completed, total, p.functional.c_str(),
                   p.condition.c_str(),
                   verifier::VerdictName(p.verdict).c_str(),
                   p.report.leaves.size(),
                   static_cast<unsigned long long>(p.report.solver_calls),
                   p.seconds);
    };
  }

  const CampaignResult result = campaign.Run(progress);
  g_campaign = nullptr;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  return result;
}

int RenderResult(const CampaignResult& result, const CampaignOptions& options,
                 api::OutputMode mode) {
  if (mode == api::OutputMode::kJson) {
    std::printf("%s", campaign::CheckpointToJson(options, result.pairs,
                                                 result.cancelled)
                          .c_str());
  } else if (mode == api::OutputMode::kCsv) {
    std::fputs(api::CsvReport(result.pairs).c_str(), stdout);
  } else {
    std::fputs(api::TableReport(result.pairs).c_str(), stdout);
    if (!options.cache_path.empty()) {
      std::printf(
          "Verdict cache (%s, %s): %llu hits, %llu misses, %llu rejected; "
          "%llu entries%s\n",
          options.cache_path.c_str(),
          result.cache_was_warm ? "warm" : "cold",
          static_cast<unsigned long long>(result.CacheHits()),
          static_cast<unsigned long long>(result.CacheMisses()),
          static_cast<unsigned long long>(result.CacheRejected()),
          static_cast<unsigned long long>(result.cache_entries),
          options.cache_readonly ? " (read-only)" : "");
    }
  }

  if (result.cancelled) {
    std::fprintf(stderr, "[xcv] cancelled: %zu/%zu pairs complete%s\n",
                 result.CompletedCount(), result.pairs.size(),
                 options.checkpoint_path.empty()
                     ? ""
                     : ", checkpoint saved — rerun with `xcv resume`");
    return 130;
  }
  return 0;
}

int CmdVerify(const ParsedArgs& args) {
  if (RejectPositionals(args)) return 2;
  const api::JobSpec spec = SpecFromFlags(args, api::DefaultJobSpec());
  TraceSession trace(args);
  const api::OutputPolicy policy =
      api::ResolveOutput(spec.output, spec.quiet, /*heartbeat_stream=*/false);

  Campaign campaign(spec.options);
  api::PopulateCampaign(spec, campaign);

  if (policy.progress)
    std::fprintf(stderr,
                 "[xcv] %zu pairs (%zu functionals x %zu conditions), "
                 "%d thread(s)\n",
                 campaign.PairCount(),
                 api::ParseFunctionalList(spec.functionals).size(),
                 api::ParseConditionList(spec.conditions).size(),
                 spec.options.num_threads);
  const CampaignResult result = ExecuteCampaign(campaign, policy);
  return RenderResult(result, spec.options, policy.mode);
}

int CmdResume(const ParsedArgs& args) {
  if (RejectPositionals(args)) return 2;
  const auto it = args.flags.find("checkpoint");
  if (it == args.flags.end()) {
    std::fprintf(stderr, "xcv resume: --checkpoint=PATH is required\n");
    return 2;
  }
  campaign::Checkpoint cp = campaign::LoadCheckpointFile(it->second);
  // Flags override the checkpointed run configuration (e.g. more threads).
  api::JobSpec base = api::DefaultJobSpec();
  base.options = cp.options;
  const api::JobSpec spec =
      SpecFromFlags(args, std::move(base), {"heartbeat", "heartbeat-stream"});
  TraceSession trace(args);
  CampaignOptions options = spec.options;
  if (options.checkpoint_path.empty()) options.checkpoint_path = it->second;

  Campaign campaign(options);
  std::size_t remaining = 0;
  for (PairState& p : cp.pairs) {
    if (!p.done) ++remaining;
    campaign.Restore(std::move(p));
  }
  const bool hb_stream = args.flags.count("heartbeat-stream") > 0;
  const api::OutputPolicy policy =
      api::ResolveOutput(spec.output, spec.quiet, hb_stream);
  if (policy.progress) {
    if (remaining == 0) {
      // Nothing left to solve: say so instead of silently re-emitting the
      // report (the checkpoint is complete; resume is a no-op render).
      std::fprintf(stderr,
                   "[xcv] campaign already complete: %zu/%zu pairs done — "
                   "re-emitting the final report\n",
                   cp.pairs.size(), cp.pairs.size());
    } else {
      std::fprintf(stderr, "[xcv] resuming %s: %zu of %zu pairs remaining\n",
                   it->second.c_str(), remaining, cp.pairs.size());
    }
  }

  // Heartbeat: touch the named file every 250 ms so a supervisor (`xcv
  // coordinate`, or any watchdog) can tell working from hung by mtime
  // alone. The thread dies with the process, so a crash stops the beat —
  // which is the point.
  std::atomic<bool> heartbeat_stop{false};
  std::thread heartbeat_thread;
  const auto hb = args.flags.find("heartbeat");
  const bool markers = policy.stream_markers;
  if (hb != args.flags.end() || markers) {
    const std::string hb_path = hb != args.flags.end() ? hb->second : "";
    heartbeat_thread = std::thread([hb_path, markers, &heartbeat_stop] {
      while (!heartbeat_stop.load(std::memory_order_relaxed)) {
        if (!hb_path.empty()) support::TouchFile(hb_path);
        if (markers) {
          // One full line per beat: a remote supervisor watching this
          // process through an ssh pipe filters these out and mirrors
          // them into its local heartbeat file.
          std::printf("XCV-HEARTBEAT\n");
          std::fflush(stdout);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    });
  }
  const CampaignResult result = ExecuteCampaign(campaign, policy);
  // The marker stream stops *before* the report is rendered: a machine-mode
  // document (json/csv) on stdout must never have an XCV-HEARTBEAT line
  // land inside it (the beat used to keep running through rendering).
  if (heartbeat_thread.joinable()) {
    heartbeat_stop.store(true, std::memory_order_relaxed);
    heartbeat_thread.join();
  }
  return RenderResult(result, options, policy.mode);
}

// ---- Distributed sharding ---------------------------------------------------

/// The campaign state a distribution command (shard, coordinate) starts
/// from: --checkpoint=PATH when given (flags override the checkpointed run
/// configuration, like resume), otherwise an unrun campaign built from
/// --functionals/--conditions and the solver flags — the day-one multi-node
/// path, sharded before the first solve.
struct SeededCampaign {
  campaign::Checkpoint checkpoint;
  /// The flags compiled over the checkpoint's (or the default) options —
  /// carries the runtime attrs and output mode the command also needs.
  api::JobSpec spec;
};

SeededCampaign CheckpointFromFlagsOrFile(
    const ParsedArgs& args, std::vector<std::string> command_flags) {
  SeededCampaign seeded;
  if (const auto it = args.flags.find("checkpoint"); it != args.flags.end()) {
    seeded.checkpoint = campaign::LoadCheckpointFile(it->second);
    api::JobSpec base = api::DefaultJobSpec();
    base.options = seeded.checkpoint.options;
    seeded.spec = SpecFromFlags(args, std::move(base),
                                std::move(command_flags));
    seeded.checkpoint.options = seeded.spec.options;
  } else {
    seeded.spec = SpecFromFlags(args, api::DefaultJobSpec(),
                                std::move(command_flags));
    seeded.checkpoint.options = seeded.spec.options;
    seeded.checkpoint.pairs = api::InitialPairs(seeded.spec);
  }
  return seeded;
}

int CmdShard(const ParsedArgs& args) {
  if (RejectPositionals(args)) return 2;
  shard::PartitionOptions popts;
  popts.shards = static_cast<int>(FlagDouble(args, "shards", 2));
  XCV_CHECK_MSG(popts.shards >= 1, "--shards must be at least 1");
  if (const auto it = args.flags.find("by"); it != args.flags.end())
    popts.by = shard::ShardByFromToken(ToLower(it->second));
  popts.rebase_provenance = args.flags.count("rebalance") > 0;

  campaign::Checkpoint cp =
      CheckpointFromFlagsOrFile(args, {"shards", "by", "out-dir", "rebalance"})
          .checkpoint;

  const std::string out_dir =
      args.flags.count("out-dir") ? args.flags.at("out-dir") : ".";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  XCV_CHECK_MSG(!ec, "cannot create --out-dir '" << out_dir
                                                 << "': " << ec.message());
  const bool quiet = args.flags.count("quiet") > 0;
  const auto shards = shard::PartitionCheckpoint(cp, popts);
  for (std::size_t k = 0; k < shards.size(); ++k) {
    const std::string path =
        out_dir + "/shard-" + std::to_string(k) + ".json";
    campaign::WriteCheckpointFile(path, shards[k].options, shards[k].pairs,
                                  shards[k].cancelled);
    if (!quiet) {
      std::size_t open_boxes = 0, work_pairs = 0;
      for (const PairState& p : shards[k].pairs) {
        if (p.applicable && !p.done) ++work_pairs;
        open_boxes += p.open.size();
      }
      std::fprintf(stderr,
                   "[xcv] %s: %zu pairs (%zu with work), %zu open boxes\n",
                   path.c_str(), shards[k].pairs.size(), work_pairs,
                   open_boxes);
    }
  }
  // A re-shard with a smaller K must not leave higher-numbered files from
  // the previous partition behind: the advertised `xcv merge shard-*.json`
  // glob would silently mix two partitions. Shard files are dense by
  // construction, so removal stops at the first absent index.
  for (std::size_t k = shards.size();; ++k) {
    const std::string stale =
        out_dir + "/shard-" + std::to_string(k) + ".json";
    if (!std::filesystem::exists(stale, ec)) break;
    if (std::filesystem::remove(stale, ec) && !ec) {
      if (!quiet)
        std::fprintf(stderr,
                     "[xcv] removed %s (stale leftover of a previous "
                     "%zu+-way partition)\n",
                     stale.c_str(), k + 1);
    } else {
      std::fprintf(stderr,
                   "[xcv] WARNING: could not remove stale %s (%s) — delete "
                   "it before merging, or `xcv merge shard-*.json` will mix "
                   "two partitions\n",
                   stale.c_str(), ec.message().c_str());
    }
  }
  if (!quiet)
    std::fprintf(stderr,
                 "[xcv] run `xcv resume --checkpoint=%s/shard-K.json` on "
                 "each node, then `xcv merge %s/shard-*.json`\n",
                 out_dir.c_str(), out_dir.c_str());
  return 0;
}

int CmdCoordinate(const ParsedArgs& args) {
  if (RejectPositionals(args)) return 2;
  shard::CoordinatorOptions copts;
  copts.shards = static_cast<int>(FlagDouble(args, "shards", 2));
  if (const auto it = args.flags.find("by"); it != args.flags.end())
    copts.by = shard::ShardByFromToken(ToLower(it->second));
  copts.work_dir = args.flags.count("work-dir") ? args.flags.at("work-dir")
                                                : "xcv-coordinate";
  copts.epoch_seconds = FlagDouble(args, "rebalance-epoch", 0.0);
  copts.lease_seconds = FlagDouble(args, "lease", copts.lease_seconds);
  copts.max_epochs =
      static_cast<int>(FlagDouble(args, "max-epochs", copts.max_epochs));
  if (const auto it = args.flags.find("nodes"); it != args.flags.end()) {
    copts.ssh_hosts = SplitCommas(it->second);
    XCV_CHECK_MSG(!copts.ssh_hosts.empty(),
                  "--nodes needs at least one host");
  }
  if (const auto it = args.flags.find("cache-dir"); it != args.flags.end())
    copts.cache_dir = it->second;
  if (const auto it = args.flags.find("xcv-bin"); it != args.flags.end())
    copts.xcv_binary = it->second;
  copts.quiet = args.flags.count("quiet") > 0;

  // Chaos hooks: --kill-node=K@S and --fault-node=K:SPEC.
  if (const auto it = args.flags.find("kill-node"); it != args.flags.end()) {
    const std::string& v = it->second;
    const auto at = v.find('@');
    copts.kill_node = std::atoi(v.c_str());
    if (at != std::string::npos)
      copts.kill_after_seconds = std::strtod(v.c_str() + at + 1, nullptr);
    XCV_CHECK_MSG(copts.kill_node >= 0 && copts.kill_after_seconds >= 0.0,
                  "--kill-node needs K@SECONDS, got '" << v << "'");
  }
  if (const auto it = args.flags.find("fault-node"); it != args.flags.end()) {
    const std::string& v = it->second;
    const auto colon = v.find(':');
    XCV_CHECK_MSG(colon != std::string::npos && colon > 0,
                  "--fault-node needs K:FAULT_SPEC, got '" << v << "'");
    copts.fault_node = std::atoi(v.substr(0, colon).c_str());
    copts.fault_spec = v.substr(colon + 1);
    // Validate the spec here, in the coordinator's process, so a typo is a
    // usage error now rather than K crashed children later. The arming is
    // scoped to the designated child's environment.
    support::fault::ArmFromSpec(copts.fault_spec);
    support::fault::Disarm();
  }

  // The coordinator owns one campaign checkpoint file. Seed it from the
  // flags (an existing --checkpoint, or a fresh matrix) exactly like shard.
  std::error_code ec;
  std::filesystem::create_directories(copts.work_dir, ec);
  XCV_CHECK_MSG(!ec, "cannot create --work-dir '" << copts.work_dir
                                                  << "': " << ec.message());
  const SeededCampaign seeded = CheckpointFromFlagsOrFile(
      args, {"shards", "by", "nodes", "work-dir", "rebalance-epoch", "lease",
             "max-epochs", "cache-dir", "xcv-bin", "kill-node", "fault-node"});
  TraceSession trace(args);
  const campaign::Checkpoint& cp = seeded.checkpoint;
  // The WDL-style retry/preemption budgets ride in the spec's runtime
  // attrs (one assembly path with the daemon; see api::ApplyFlags).
  copts.attrs = seeded.spec.runtime;
  copts.checkpoint_path = args.flags.count("checkpoint")
                              ? args.flags.at("checkpoint")
                              : copts.work_dir + "/campaign.json";
  campaign::WriteCheckpointFile(copts.checkpoint_path, cp.options, cp.pairs,
                                cp.cancelled);

  const shard::CoordinatorResult result = shard::RunCoordinator(copts);
  if (!copts.quiet) {
    std::fprintf(stderr,
                 "[xcv coordinate] %s: %d epoch(s), %d launch(es), %d "
                 "kill(s), %d recover(ies), %zu fragment(s) backfilled\n",
                 result.converged ? "converged" : "gave up", result.epochs,
                 result.launches, result.kills, result.recoveries,
                 result.backfilled_fragments);
    std::fprintf(stderr,
                 "[xcv coordinate] %d retr%s, %d preemption(s), %d "
                 "stall(s), %d launch failure(s), %zu node(s) quarantined\n",
                 result.retries, result.retries == 1 ? "y" : "ies",
                 result.preemptions, result.stalls, result.launch_failures,
                 result.quarantined.size());
    for (const std::string& node : result.quarantined)
      std::fprintf(stderr, "[xcv coordinate] quarantined: %s\n",
                   node.c_str());
  }
  if (!result.converged) {
    std::fprintf(stderr, "xcv coordinate: %s\n", result.error.c_str());
    return 1;
  }

  // Render the converged campaign exactly like a single-node run would.
  campaign::Checkpoint final_cp =
      campaign::LoadCheckpointFile(copts.checkpoint_path);
  if (seeded.spec.output == api::OutputMode::kJson) {
    std::printf("%s", campaign::CheckpointToJson(final_cp.options,
                                                 final_cp.pairs,
                                                 final_cp.cancelled)
                          .c_str());
  } else if (seeded.spec.output == api::OutputMode::kCsv) {
    std::fputs(api::CsvReport(final_cp.pairs).c_str(), stdout);
  } else {
    std::fputs(api::TableReport(final_cp.pairs).c_str(), stdout);
  }
  return 0;
}

int CmdMerge(const ParsedArgs& args) {
  if (args.positionals.empty()) {
    std::fprintf(stderr,
                 "xcv merge: needs at least one shard checkpoint file\n");
    return 2;
  }
  const bool skip_corrupt = args.flags.count("skip-corrupt") > 0;
  std::vector<campaign::Checkpoint> inputs;
  inputs.reserve(args.positionals.size());
  for (const std::string& path : args.positionals) {
    try {
      inputs.push_back(campaign::LoadCheckpointFile(path));
    } catch (const InternalError& e) {
      // Re-raise with the offending file named: a corrupt shard must be a
      // clear diagnostic, not a stack trace. With --skip-corrupt the
      // survivors still merge (the skipped shard's pairs go missing, which
      // the coverage warnings below surface).
      if (!skip_corrupt)
        throw InternalError("shard checkpoint '" + path +
                            "' is unreadable or malformed: " + e.what());
      std::fprintf(stderr, "[xcv] WARNING: skipping shard '%s': %s\n",
                   path.c_str(), e.what());
    }
  }
  // Zero readable inputs must be a loud, named failure — not an empty
  // report quietly overwriting last night's good merge.
  XCV_CHECK_MSG(!inputs.empty(),
                "merge: none of the "
                    << args.positionals.size()
                    << " input file(s) could be read — nothing to merge");

  // Usage errors must fire before any output file is written.
  XCV_CHECK_MSG(
      args.flags.count("cache-out") == 0 || args.flags.count("cache") > 0,
      "--cache-out needs --cache=FILE,... (no shard caches to union)");

  shard::MergeStats stats;
  campaign::Checkpoint merged =
      shard::MergeCheckpoints(std::move(inputs), &stats);
  XCV_CHECK_MSG(!merged.pairs.empty(),
                "merge: the readable inputs contain zero pairs — refusing "
                "to write an empty campaign");
  if (stats.mixed_partitions)
    std::fprintf(stderr,
                 "[xcv] note: inputs declare partitions of different sizes "
                 "(a re-sharded shard, or a stale file swept up by the "
                 "glob?) — partition coverage cannot be checked; actual "
                 "overlaps, if any, are reported below\n");
  if (!stats.missing_shards.empty() || stats.origin_gaps) {
    std::string slots;
    for (int i : stats.missing_shards)
      slots += (slots.empty() ? "" : ",") + std::to_string(i);
    std::fprintf(stderr,
                 "[xcv] WARNING: this union does not cover the whole "
                 "campaign%s%s — pairs are missing from the merged report; "
                 "merge the remaining shards in later (provenance is "
                 "preserved)\n",
                 slots.empty() ? "" : ": missing shard slot(s) ",
                 slots.c_str());
  }
  if (stats.options_mismatch)
    std::fprintf(stderr,
                 "[xcv] WARNING: shards were run with different "
                 "verdict-affecting options (a node overrode solver flags "
                 "on resume?) — the merged report is not comparable to a "
                 "single-node run\n");
  if (stats.duplicate_leaves > 0)
    std::fprintf(stderr,
                 "[xcv] WARNING: inputs overlap (%zu boxes decided by more "
                 "than one input) — verdicts and leaves stay sound, but "
                 "witness and counter columns double-count the overlapped "
                 "work\n",
                 stats.duplicate_leaves);
  if (const auto it = args.flags.find("out"); it != args.flags.end())
    campaign::WriteCheckpointFile(it->second, merged.options, merged.pairs,
                                  merged.cancelled);

  bool cache_merged = false;
  shard::CacheMergeStats cache_stats;
  std::string cache_out;
  if (const auto it = args.flags.find("cache"); it != args.flags.end()) {
    cache::VerdictCache cache_union;
    cache_stats = shard::MergeCacheFiles(SplitCommas(it->second),
                                         &cache_union);
    cache_out = args.flags.count("cache-out") ? args.flags.at("cache-out")
                                              : "merged-cache.json";
    cache_union.Save(cache_out);
    cache_merged = true;
  }

  // Counts for the stderr summary, taken before the pair vector is moved
  // into the render path (reports can hold very large frontiers).
  const std::size_t pair_count = merged.pairs.size();
  std::size_t open_boxes = 0, undone = 0;
  for (const PairState& p : merged.pairs) {
    open_boxes += p.open.size();
    if (p.applicable && !p.done) ++undone;
  }

  const api::OutputMode format =
      args.flags.count("format")
          ? api::OutputModeFromToken(ToLower(args.flags.at("format")))
          : api::OutputMode::kTable;
  if (format == api::OutputMode::kJson) {
    std::printf("%s", campaign::CheckpointToJson(merged.options, merged.pairs,
                                                 merged.cancelled)
                          .c_str());
  } else if (format == api::OutputMode::kCsv) {
    std::fputs(api::CsvReport(merged.pairs).c_str(), stdout);
  } else {
    std::fputs(api::TableReport(merged.pairs).c_str(), stdout);
  }

  if (args.flags.count("quiet") == 0) {
    std::fprintf(stderr,
                 "[xcv] merged %zu shards: %zu pairs from %zu fragments, "
                 "%zu duplicate leaves dropped, %zu open boxes deduped\n",
                 stats.shards, pair_count, stats.pair_fragments,
                 stats.duplicate_leaves, stats.open_dropped);
    if (undone > 0)
      std::fprintf(stderr,
                   "[xcv] %zu pairs still open (%zu boxes) — the merged "
                   "checkpoint is resumable\n",
                   undone, open_boxes);
    if (cache_merged)
      std::fprintf(
          stderr,
          "[xcv] cache union -> %s: %llu entries (%llu cross-shard "
          "duplicates, %llu conflicts dropped, %zu files, %zu unreadable)\n",
          cache_out.c_str(),
          static_cast<unsigned long long>(cache_stats.added),
          static_cast<unsigned long long>(cache_stats.duplicates),
          static_cast<unsigned long long>(cache_stats.conflicts_dropped),
          cache_stats.files_loaded, cache_stats.files_failed);
  }
  return 0;
}

int CmdCacheStats(const ParsedArgs& args) {
  if (args.positionals.size() != 1) {
    std::fprintf(stderr, "xcv cache-stats: needs exactly one cache file\n");
    return 2;
  }
  const std::string& path = args.positionals.front();
  cache::VerdictCache cache;
  XCV_CHECK_MSG(cache.Load(path), "cannot load verdict cache '"
                                      << path << "' (missing or corrupt)");
  std::size_t unsat = 0, delta_sat = 0, timeout = 0;
  std::unordered_set<std::uint64_t> scopes;
  cache.ForEach([&](std::uint64_t scope, std::span<const Interval>,
                    const cache::CachedVerdict& verdict) {
    scopes.insert(scope);
    switch (verdict.kind) {
      case cache::CachedKind::kUnsat: ++unsat; break;
      case cache::CachedKind::kDeltaSat: ++delta_sat; break;
      case cache::CachedKind::kTimeout: ++timeout; break;
    }
  });
  std::printf("verdict cache %s\n", path.c_str());
  std::printf("  entries:   %zu\n", cache.size());
  std::printf("  scopes:    %zu\n", scopes.size());
  std::printf("  unsat:     %zu\n", unsat);
  std::printf("  delta_sat: %zu\n", delta_sat);
  std::printf("  timeout:   %zu\n", timeout);
  return 0;
}

int CmdList() {
  std::printf("Functionals (paper Table I columns):\n");
  for (const Functional& f : functionals::PaperFunctionals())
    std::printf("  %-9s %-9s %s\n", f.name.c_str(),
                functionals::FamilyName(f.family).c_str(),
                functionals::DesignName(f.design).c_str());
  std::printf("Extensions:\n");
  for (const Functional& f : functionals::ExtensionFunctionals())
    std::printf("  %-9s %-9s %s\n", f.name.c_str(),
                functionals::FamilyName(f.family).c_str(),
                functionals::DesignName(f.design).c_str());
  std::printf("Conditions (paper Table I rows):\n");
  for (const ConditionInfo& c : conditions::AllConditions())
    std::printf("  %-4s %s\n", c.short_id.c_str(), c.name.c_str());
  return 0;
}

int CmdInfo(const ParsedArgs& args) {
  std::fputs(api::InfoReport().c_str(), stdout);
  if (args.flags.count("metrics") > 0)
    std::fputs(api::MetricsReport().c_str(), stdout);
  return 0;
}

}  // namespace

// The selector grammars live in the API layer now (src/api/job_spec.cpp);
// these aliases keep the CLI's public surface stable.
std::vector<const ConditionInfo*> ParseConditionList(const std::string& spec) {
  return api::ParseConditionList(spec);
}

std::vector<const Functional*> ParseFunctionalList(const std::string& spec) {
  return api::ParseFunctionalList(spec);
}

int Main(int argc, const char* const* argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.has_value()) return 2;
  try {
    // Fault injection arms before any command touches a file. Disarmed
    // (the overwhelmingly common case) this is one relaxed atomic load per
    // fault point — no measurable cost on any hot path.
    support::fault::ArmFromEnv();
    if (const auto it = args->flags.find("faults"); it != args->flags.end())
      support::fault::ArmFromSpec(it->second);

    if (args->command == "verify") return CmdVerify(*args);
    if (args->command == "resume") return CmdResume(*args);
    if (args->command == "shard") return CmdShard(*args);
    if (args->command == "coordinate") return CmdCoordinate(*args);
    if (args->command == "merge") return CmdMerge(*args);
    if (args->command == "cache-stats") return CmdCacheStats(*args);
    if (args->command == "list") {
      if (RejectPositionals(*args)) return 2;
      return CmdList();
    }
    if (args->command == "info") {
      if (RejectPositionals(*args)) return 2;
      return CmdInfo(*args);
    }
    if (args->command == "help" || args->command == "--help") {
      if (RejectPositionals(*args)) return 2;
      std::printf("%s", kUsage);
      return 0;
    }
    std::fprintf(stderr, "xcv: unknown command '%s'\n%s",
                 args->command.c_str(), kUsage);
    return 2;
  } catch (const InternalError& e) {
    std::fprintf(stderr, "xcv: %s\n", e.what());
    return 2;
  }
}

}  // namespace xcv::cli
