#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <system_error>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <unordered_set>

#include "cache/verdict_cache.h"
#include "campaign/campaign.h"
#include "campaign/serialize.h"
#include "report/tables.h"
#include "shard/coordinator.h"
#include "shard/merge.h"
#include "shard/partition.h"
#include "support/check.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/simd.h"
#include "support/strings.h"
#include "verifier/region.h"

namespace xcv::cli {

namespace {

using campaign::Campaign;
using campaign::CampaignOptions;
using campaign::CampaignResult;
using campaign::PairState;
using conditions::ConditionInfo;
using functionals::Functional;

constexpr const char* kUsage = R"(xcv — exact-condition verification campaigns

Usage:
  xcv verify [options]      Run a (functional x condition) verification matrix
  xcv resume [options]      Continue a campaign from --checkpoint
  xcv shard [options]       Partition a campaign checkpoint into K shard
                            checkpoints, one per node (resume each anywhere)
  xcv merge FILE... [opts]  Union resumed shard checkpoints (and their
                            verdict caches) back into one campaign report
  xcv coordinate [options]  Supervise an elastic K-node campaign on this
                            host: deal shards, launch resumes, watch
                            heartbeats, re-deal dead/straggler nodes' work,
                            merge — loops until every pair is done
  xcv cache-stats FILE      Inspect a verdict-cache file (read-only)
  xcv list                  List known functionals and conditions
  xcv info                  Show SIMD tiers: compiled, CPU-supported, active
                            dispatch choice, and the XCV_SIMD override
  xcv help                  Show this help

Options (verify/resume):
  --functionals=SPEC   Comma list of functionals, family selectors (lda, gga,
                       mgga) or "all" (the five paper DFAs).      [all]
  --conditions=SPEC    Comma list of conditions, ranges (EC1..EC4) or "all".
                                                                  [all]
  --threads=N          Worker cap on the shared scheduler.        [1]
  --budget-seconds=S   Processing-time budget per pair; 0 = unlimited. [10]
  --split-threshold=T  Algorithm 1 split threshold t.             [0.3125]
  --solver-nodes=N     Per-solver-call node budget.               [30000]
  --delta=D            Solver precision delta.                    [0.001]
  --wave-width=K       Sibling boxes per batched interval sweep in the
                       solver (1 = scalar; results are identical at any
                       width, only the speed changes).            [8]
  --frontier=S         Frontier order: widest | suspect | fifo.   [widest]
  --checkpoint=PATH    Write checkpoints here (after every completed pair,
                       on Ctrl-C, and at the end); resume reads it.
  --cache=PATH         Persistent verdict cache: load it before the run (a
                       missing or corrupt file starts cold), record every
                       decided box, write it back at the end. Repeated
                       campaigns replay cached verdicts instead of solving;
                       reports are byte-identical either way. The XCV_CACHE
                       environment variable supplies a default path.
  --cache-readonly     Consult --cache but never write it back.
  --format=F           Final output: table | json | csv.          [table]
  --quiet              No per-pair progress on stderr.
  --heartbeat=PATH     (resume) Touch PATH every 250 ms while running, so a
                       supervisor can tell a working node from a hung one.
  --heartbeat-stream   (resume) Also print an XCV-HEARTBEAT line to stdout
                       every beat, so a remote supervisor can mirror
                       liveness through an ssh channel (the coordinator's
                       --nodes transport filters these lines out).

Options (shard):
  --checkpoint=PATH    Campaign checkpoint to partition. When omitted, an
                       unrun campaign is built from --functionals,
                       --conditions and the solver flags above and sharded
                       before any solving.
  --shards=K           Number of shard checkpoints to write.      [2]
  --by=G               Granularity: pairs (whole pairs round-robin) or
                       frontier (open boxes dealt round-robin in the
                       campaign's frontier-priority order).       [pairs]
  --out-dir=DIR        Directory for shard-0.json .. shard-K-1.json.  [.]
  --rebalance          Re-mint origin_index provenance from the current pair
                       order, making this partition dense in its own
                       coordinates — use when re-dealing a merged mid-flight
                       checkpoint across a changed fleet.

Options (coordinate):
  --checkpoint=PATH    Campaign checkpoint to drive (created fresh from
                       --functionals/--conditions when absent); the
                       coordinator re-reads and rewrites it every epoch, so
                       killing and re-running the coordinator resumes.
  --shards=K           Fleet width: resume processes per epoch.     [2]
  --nodes=H1,H2,...    Run each node remotely over ssh/scp instead of
                       forking locally: one node per host (overrides
                       --shards), shard checkpoints and caches shipped out,
                       `xcv resume --heartbeat-stream` run there, results
                       fetched back. Hosts must accept non-interactive ssh
                       (BatchMode); --xcv-bin names the remote binary.
  --by=G               Partition granularity: pairs | frontier.    [pairs]
  --work-dir=DIR       Shard files, heartbeats, per-epoch node logs (kept
                       for the last 3 epochs), and the node-health ledger
                       nodes.json.                      [xcv-coordinate]
  --max-retries=N      Ordinary failures tolerated per shard per epoch
                       before its node gives up and the shard is re-dealt
                       across the surviving nodes.                  [2]
  --preemptible=N      Dedicated budget for preemption-style SIGKILLs,
                       consumed before --max-retries (WDL
                       preemptible_tries).                          [3]
  --quarantine-after=N Consecutive failures before a node is quarantined
                       (sits out epochs, then earns one probe).     [3]
  --launch-timeout=S   A launched node that never heartbeats within S
                       seconds is a transport failure.              [30]
  --rebalance-epoch=S  Deadline per epoch: stragglers still running after S
                       seconds are asked to checkpoint and stop, and their
                       remaining frontier is re-dealt across the whole
                       fleet. 0 = wait for every node.             [0]
  --lease=S            Heartbeat lease: a node silent for S seconds is
                       presumed hung and killed (its work since its last
                       checkpoint is re-dealt).                    [5]
  --max-epochs=N       Give up after N epochs.                     [64]
  --cache-dir=DIR      Give node k a persistent verdict cache at
                       DIR/cache-node-k.json.
  --kill-node=K@S      Chaos hook: SIGKILL node K, S seconds into epoch 0.
  --fault-node=K:SPEC  Chaos hook: run node K of epoch 0 with
                       XCV_FAULTS=SPEC armed.
  --xcv-bin=PATH       Binary to launch nodes with.    [this executable]
  --format=F           Render the converged report: table | json | csv.

Options (merge):
  -o PATH, --out=PATH  Write the merged checkpoint here (it is a valid,
                       resumable campaign checkpoint).
  --cache=LIST         Shard verdict-cache files to union (comma list; the
                       flag may also repeat, once per file). Conflicting
                       entries are rejected and dropped.
  --cache-out=PATH     Merged cache destination.       [merged-cache.json]
  --format=F           Render the merged report: table | json | csv.
  --quiet              No merge summary on stderr.
  --skip-corrupt       Skip unreadable/corrupt shard inputs with a warning
                       instead of failing; zero readable inputs is still an
                       error.

Fault injection (any command, for robustness testing):
  --faults=SPEC        Arm named fault points for this process, e.g.
                       --faults=checkpoint.save.short-write@2. The
                       XCV_FAULTS environment variable is the same thing;
                       `xcv info` lists every registered point; see README
                       "Fault tolerance" for the grammar.

Exit codes: 0 success, 1 coordinate gave up, 2 usage error, 70 injected
fault crash, 126/127 node launch failure (cannot exec), 130 cancelled
(checkpoint saved).
)";

// Signal handler target: only an atomic flag is touched in the handler.
Campaign* volatile g_campaign = nullptr;

void HandleSignal(int) {
  Campaign* c = g_campaign;
  if (c != nullptr) c->RequestCancel();
}

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;
  /// Non-flag arguments after the command (merge's shard files,
  /// cache-stats' cache file). Commands that take none reject them.
  std::vector<std::string> positionals;
};

std::optional<ParsedArgs> ParseArgs(int argc, const char* const* argv) {
  ParsedArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string key = arg.substr(2), value = "true";
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      }
      // For merge, --cache accumulates: repeated flags build the same comma
      // list as --cache=a.json,b.json, so per-node cache files can be
      // listed one flag at a time. Everywhere else the usual last-flag-wins
      // applies (verify/resume take exactly one cache path).
      if (key == "cache" && args.command == "merge" &&
          args.flags.count(key) > 0)
        value = args.flags[key] + "," + value;
      args.flags[key] = value;
    } else if (arg == "-o" && args.command == "merge") {
      // Merge's one short flag, spelled like every other merge/diff tool;
      // --out=PATH is the long form. Other commands treat -o as the stray
      // argument it is.
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xcv: -o needs a path argument\n");
        return std::nullopt;
      }
      args.flags["out"] = argv[++i];
    } else if (args.command.empty()) {
      args.command = arg;
    } else {
      args.positionals.push_back(std::move(arg));
    }
  }
  if (args.command.empty()) args.command = "help";
  return args;
}

/// Commands without positional operands reject stray arguments loudly
/// instead of silently ignoring a typo.
bool RejectPositionals(const ParsedArgs& args) {
  if (args.positionals.empty()) return false;
  std::fprintf(stderr, "xcv %s: unexpected argument '%s'\n",
               args.command.c_str(), args.positionals.front().c_str());
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string token;
  for (char c : s) {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

double FlagDouble(const ParsedArgs& args, const std::string& key,
                  double fallback) {
  const auto it = args.flags.find(key);
  if (it == args.flags.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  XCV_CHECK_MSG(end != it->second.c_str() && *end == '\0' && v >= 0.0,
                "--" << key << " needs a non-negative number, got '"
                     << it->second << "'");
  return v;
}

CampaignOptions OptionsFromFlags(const ParsedArgs& args,
                                 const CampaignOptions& base) {
  CampaignOptions o = base;
  o.num_threads = static_cast<int>(FlagDouble(args, "threads", o.num_threads));
  XCV_CHECK_MSG(o.num_threads >= 1, "--threads must be at least 1");
  const double budget = FlagDouble(args, "budget-seconds",
                                   o.verifier.total_time_budget_seconds);
  // 0 means unlimited on the command line.
  o.verifier.total_time_budget_seconds =
      budget > 0.0 ? budget : std::numeric_limits<double>::infinity();
  o.verifier.split_threshold =
      FlagDouble(args, "split-threshold", o.verifier.split_threshold);
  o.verifier.solver.max_nodes = static_cast<std::uint64_t>(
      FlagDouble(args, "solver-nodes",
                 static_cast<double>(o.verifier.solver.max_nodes)));
  o.verifier.solver.delta = FlagDouble(args, "delta", o.verifier.solver.delta);
  o.verifier.solver.wave_width = static_cast<int>(
      FlagDouble(args, "wave-width",
                 static_cast<double>(o.verifier.solver.wave_width)));
  XCV_CHECK_MSG(o.verifier.solver.wave_width >= 1,
                "--wave-width must be at least 1");
  if (const auto it = args.flags.find("frontier"); it != args.flags.end())
    o.verifier.frontier = campaign::FrontierFromToken(ToLower(it->second));
  if (const auto it = args.flags.find("checkpoint"); it != args.flags.end())
    o.checkpoint_path = it->second;
  if (const auto it = args.flags.find("cache"); it != args.flags.end()) {
    o.cache_path = it->second;
  } else if (const char* env = std::getenv("XCV_CACHE");
             env != nullptr && env[0] != '\0') {
    o.cache_path = env;
  }
  if (args.flags.count("cache-readonly") > 0) {
    XCV_CHECK_MSG(!o.cache_path.empty(),
                  "--cache-readonly needs --cache=PATH (or XCV_CACHE)");
    o.cache_readonly = true;
  }
  o.verifier.num_threads = o.num_threads;
  return o;
}

CampaignOptions DefaultOptions() {
  CampaignOptions o;
  o.verifier.split_threshold = 0.3125;
  o.verifier.solver.max_nodes = 30'000;
  o.verifier.solver.delta = 1e-3;
  o.verifier.solver.time_budget_seconds = 0.5;
  o.verifier.solver.max_invalid_models = 512;
  o.verifier.total_time_budget_seconds = 10.0;
  return o;
}

void PrintCsv(const CampaignResult& result) {
  // Columns 1–11 (through witnesses) are deterministic for a budget-free
  // run configuration — byte-identical across thread counts, wave widths,
  // and cache states; the cache/timing columns after them are run-local.
  std::printf(
      "functional,condition,applicable,done,verdict,verified_frac,"
      "counterexample_frac,inconclusive_frac,timeout_frac,leaves,witnesses,"
      "solver_calls,solver_timeouts,cache_hits,cache_misses,cache_rejected,"
      "seconds\n");
  using verifier::RegionStatus;
  for (const PairState& p : result.pairs) {
    std::printf(
        "%s,%s,%d,%d,%s,%.6f,%.6f,%.6f,%.6f,%zu,%zu,%llu,%llu,%llu,%llu,"
        "%llu,%.3f\n",
        p.functional.c_str(), p.condition.c_str(), p.applicable ? 1 : 0,
        p.done ? 1 : 0, campaign::VerdictToken(p.verdict).c_str(),
        p.report.VolumeFraction(RegionStatus::kVerified),
        p.report.VolumeFraction(RegionStatus::kCounterexample),
        p.report.VolumeFraction(RegionStatus::kInconclusive),
        p.report.VolumeFraction(RegionStatus::kTimeout),
        p.report.leaves.size(), p.report.witnesses.size(),
        static_cast<unsigned long long>(p.report.solver_calls),
        static_cast<unsigned long long>(p.report.solver_timeouts),
        static_cast<unsigned long long>(p.report.cache_hits),
        static_cast<unsigned long long>(p.report.cache_misses),
        static_cast<unsigned long long>(p.report.cache_rejected),
        p.seconds);
  }
}

void PrintTable(const CampaignResult& result) {
  // Recover the row/column structure from the pair list (works for both
  // fresh matrices and resumed subsets).
  std::vector<std::string> conds, funcs;
  for (const PairState& p : result.pairs) {
    if (std::find(conds.begin(), conds.end(), p.condition) == conds.end())
      conds.push_back(p.condition);
    if (std::find(funcs.begin(), funcs.end(), p.functional) == funcs.end())
      funcs.push_back(p.functional);
  }
  std::vector<std::vector<report::VerdictCell>> cells(
      conds.size(),
      std::vector<report::VerdictCell>(
          funcs.size(), {verifier::Verdict::kNotApplicable}));
  for (const PairState& p : result.pairs) {
    const auto r = std::find(conds.begin(), conds.end(), p.condition) -
                   conds.begin();
    const auto c = std::find(funcs.begin(), funcs.end(), p.functional) -
                   funcs.begin();
    cells[r][c] = {p.verdict};
  }
  std::vector<std::string> row_labels;
  for (const std::string& c : conds) {
    const ConditionInfo* info = conditions::FindCondition(c);
    row_labels.push_back(info != nullptr ? info->name : c);
  }
  std::printf("%s\n", report::RenderTable1(row_labels, funcs, cells).c_str());

  std::printf("Per-pair detail (fractions of domain volume):\n");
  std::printf("%-10s %-9s %5s %8s %8s %8s %8s %6s %9s\n", "condition", "DFA",
              "done", "verified", "counter", "inconcl", "timeout", "calls",
              "secs");
  using verifier::RegionStatus;
  for (const PairState& p : result.pairs) {
    if (!p.applicable) continue;
    std::printf("%-10s %-9s %5s %8.3f %8.3f %8.3f %8.3f %6llu %9.2f\n",
                p.condition.c_str(), p.functional.c_str(),
                p.done ? "yes" : "NO",
                p.report.VolumeFraction(RegionStatus::kVerified),
                p.report.VolumeFraction(RegionStatus::kCounterexample),
                p.report.VolumeFraction(RegionStatus::kInconclusive),
                p.report.VolumeFraction(RegionStatus::kTimeout),
                static_cast<unsigned long long>(p.report.solver_calls),
                p.seconds);
  }
}

int RunCampaign(Campaign& campaign, const CampaignOptions& options,
                const std::string& format, bool quiet) {
  g_campaign = &campaign;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  Campaign::ProgressFn progress;
  if (!quiet) {
    progress = [](const PairState& p, std::size_t completed,
                  std::size_t total) {
      std::fprintf(stderr, "[xcv] %zu/%zu %s x %s: %s (%zu leaves, %llu "
                           "calls, %.2fs)\n",
                   completed, total, p.functional.c_str(),
                   p.condition.c_str(),
                   verifier::VerdictName(p.verdict).c_str(),
                   p.report.leaves.size(),
                   static_cast<unsigned long long>(p.report.solver_calls),
                   p.seconds);
    };
  }

  const CampaignResult result = campaign.Run(progress);
  g_campaign = nullptr;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  if (format == "json") {
    std::printf("%s", campaign::CheckpointToJson(options, result.pairs,
                                                 result.cancelled)
                          .c_str());
  } else if (format == "csv") {
    PrintCsv(result);
  } else {
    PrintTable(result);
    if (!options.cache_path.empty()) {
      std::printf(
          "Verdict cache (%s, %s): %llu hits, %llu misses, %llu rejected; "
          "%llu entries%s\n",
          options.cache_path.c_str(),
          result.cache_was_warm ? "warm" : "cold",
          static_cast<unsigned long long>(result.CacheHits()),
          static_cast<unsigned long long>(result.CacheMisses()),
          static_cast<unsigned long long>(result.CacheRejected()),
          static_cast<unsigned long long>(result.cache_entries),
          options.cache_readonly ? " (read-only)" : "");
    }
  }

  if (result.cancelled) {
    std::fprintf(stderr, "[xcv] cancelled: %zu/%zu pairs complete%s\n",
                 result.CompletedCount(), result.pairs.size(),
                 options.checkpoint_path.empty()
                     ? ""
                     : ", checkpoint saved — rerun with `xcv resume`");
    return 130;
  }
  return 0;
}

int CmdVerify(const ParsedArgs& args) {
  if (RejectPositionals(args)) return 2;
  const CampaignOptions options = OptionsFromFlags(args, DefaultOptions());
  const auto funcs = ParseFunctionalList(
      args.flags.count("functionals") ? args.flags.at("functionals") : "all");
  const auto conds = ParseConditionList(
      args.flags.count("conditions") ? args.flags.at("conditions") : "all");

  Campaign campaign(options);
  for (const ConditionInfo* cond : conds)
    for (const Functional* f : funcs) campaign.Add(*f, *cond);

  const std::string format =
      args.flags.count("format") ? args.flags.at("format") : "table";
  const bool quiet = args.flags.count("quiet") > 0;
  if (!quiet)
    std::fprintf(stderr,
                 "[xcv] %zu pairs (%zu functionals x %zu conditions), "
                 "%d thread(s)\n",
                 campaign.PairCount(), funcs.size(), conds.size(),
                 options.num_threads);
  return RunCampaign(campaign, options, format, quiet);
}

int CmdResume(const ParsedArgs& args) {
  if (RejectPositionals(args)) return 2;
  const auto it = args.flags.find("checkpoint");
  if (it == args.flags.end()) {
    std::fprintf(stderr, "xcv resume: --checkpoint=PATH is required\n");
    return 2;
  }
  campaign::Checkpoint cp = campaign::LoadCheckpointFile(it->second);
  // Flags override the checkpointed run configuration (e.g. more threads).
  CampaignOptions options = OptionsFromFlags(args, cp.options);
  if (options.checkpoint_path.empty()) options.checkpoint_path = it->second;

  Campaign campaign(options);
  std::size_t remaining = 0;
  for (PairState& p : cp.pairs) {
    if (!p.done) ++remaining;
    campaign.Restore(std::move(p));
  }
  const std::string format =
      args.flags.count("format") ? args.flags.at("format") : "table";
  const bool quiet = args.flags.count("quiet") > 0;
  if (!quiet) {
    if (remaining == 0) {
      // Nothing left to solve: say so instead of silently re-emitting the
      // report (the checkpoint is complete; resume is a no-op render).
      std::fprintf(stderr,
                   "[xcv] campaign already complete: %zu/%zu pairs done — "
                   "re-emitting the final report\n",
                   cp.pairs.size(), cp.pairs.size());
    } else {
      std::fprintf(stderr, "[xcv] resuming %s: %zu of %zu pairs remaining\n",
                   it->second.c_str(), remaining, cp.pairs.size());
    }
  }

  // Heartbeat: touch the named file every 250 ms so a supervisor (`xcv
  // coordinate`, or any watchdog) can tell working from hung by mtime
  // alone. The thread dies with the process, so a crash stops the beat —
  // which is the point.
  std::atomic<bool> heartbeat_stop{false};
  std::thread heartbeat_thread;
  const auto hb = args.flags.find("heartbeat");
  const bool hb_stream = args.flags.count("heartbeat-stream") > 0;
  if (hb != args.flags.end() || hb_stream) {
    const std::string hb_path = hb != args.flags.end() ? hb->second : "";
    heartbeat_thread = std::thread([hb_path, hb_stream, &heartbeat_stop] {
      while (!heartbeat_stop.load(std::memory_order_relaxed)) {
        if (!hb_path.empty()) support::TouchFile(hb_path);
        if (hb_stream) {
          // One full line per beat: a remote supervisor watching this
          // process through an ssh pipe filters these out and mirrors
          // them into its local heartbeat file.
          std::printf("XCV-HEARTBEAT\n");
          std::fflush(stdout);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    });
  }
  const int rc = RunCampaign(campaign, options, format, quiet);
  if (heartbeat_thread.joinable()) {
    heartbeat_stop.store(true, std::memory_order_relaxed);
    heartbeat_thread.join();
  }
  return rc;
}

// ---- Distributed sharding ---------------------------------------------------

/// The campaign state a distribution command (shard, coordinate) starts
/// from: --checkpoint=PATH when given (flags override the checkpointed run
/// configuration, like resume), otherwise an unrun campaign built from
/// --functionals/--conditions and the solver flags — the day-one multi-node
/// path, sharded before the first solve.
campaign::Checkpoint CheckpointFromFlagsOrFile(const ParsedArgs& args) {
  campaign::Checkpoint cp;
  if (const auto it = args.flags.find("checkpoint"); it != args.flags.end()) {
    cp = campaign::LoadCheckpointFile(it->second);
    cp.options = OptionsFromFlags(args, cp.options);
  } else {
    cp.options = OptionsFromFlags(args, DefaultOptions());
    const auto funcs = ParseFunctionalList(
        args.flags.count("functionals") ? args.flags.at("functionals")
                                        : "all");
    const auto conds = ParseConditionList(
        args.flags.count("conditions") ? args.flags.at("conditions") : "all");
    for (const ConditionInfo* cond : conds)
      for (const Functional* f : funcs)
        cp.pairs.push_back(campaign::InitialPairState(*f, *cond));
  }
  return cp;
}

int CmdShard(const ParsedArgs& args) {
  if (RejectPositionals(args)) return 2;
  shard::PartitionOptions popts;
  popts.shards = static_cast<int>(FlagDouble(args, "shards", 2));
  XCV_CHECK_MSG(popts.shards >= 1, "--shards must be at least 1");
  if (const auto it = args.flags.find("by"); it != args.flags.end())
    popts.by = shard::ShardByFromToken(ToLower(it->second));
  popts.rebase_provenance = args.flags.count("rebalance") > 0;

  campaign::Checkpoint cp = CheckpointFromFlagsOrFile(args);

  const std::string out_dir =
      args.flags.count("out-dir") ? args.flags.at("out-dir") : ".";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  XCV_CHECK_MSG(!ec, "cannot create --out-dir '" << out_dir
                                                 << "': " << ec.message());
  const bool quiet = args.flags.count("quiet") > 0;
  const auto shards = shard::PartitionCheckpoint(cp, popts);
  for (std::size_t k = 0; k < shards.size(); ++k) {
    const std::string path =
        out_dir + "/shard-" + std::to_string(k) + ".json";
    campaign::WriteCheckpointFile(path, shards[k].options, shards[k].pairs,
                                  shards[k].cancelled);
    if (!quiet) {
      std::size_t open_boxes = 0, work_pairs = 0;
      for (const PairState& p : shards[k].pairs) {
        if (p.applicable && !p.done) ++work_pairs;
        open_boxes += p.open.size();
      }
      std::fprintf(stderr,
                   "[xcv] %s: %zu pairs (%zu with work), %zu open boxes\n",
                   path.c_str(), shards[k].pairs.size(), work_pairs,
                   open_boxes);
    }
  }
  // A re-shard with a smaller K must not leave higher-numbered files from
  // the previous partition behind: the advertised `xcv merge shard-*.json`
  // glob would silently mix two partitions. Shard files are dense by
  // construction, so removal stops at the first absent index.
  for (std::size_t k = shards.size();; ++k) {
    const std::string stale =
        out_dir + "/shard-" + std::to_string(k) + ".json";
    if (!std::filesystem::exists(stale, ec)) break;
    if (std::filesystem::remove(stale, ec) && !ec) {
      if (!quiet)
        std::fprintf(stderr,
                     "[xcv] removed %s (stale leftover of a previous "
                     "%zu+-way partition)\n",
                     stale.c_str(), k + 1);
    } else {
      std::fprintf(stderr,
                   "[xcv] WARNING: could not remove stale %s (%s) — delete "
                   "it before merging, or `xcv merge shard-*.json` will mix "
                   "two partitions\n",
                   stale.c_str(), ec.message().c_str());
    }
  }
  if (!quiet)
    std::fprintf(stderr,
                 "[xcv] run `xcv resume --checkpoint=%s/shard-K.json` on "
                 "each node, then `xcv merge %s/shard-*.json`\n",
                 out_dir.c_str(), out_dir.c_str());
  return 0;
}

int CmdCoordinate(const ParsedArgs& args) {
  if (RejectPositionals(args)) return 2;
  shard::CoordinatorOptions copts;
  copts.shards = static_cast<int>(FlagDouble(args, "shards", 2));
  if (const auto it = args.flags.find("by"); it != args.flags.end())
    copts.by = shard::ShardByFromToken(ToLower(it->second));
  copts.work_dir = args.flags.count("work-dir") ? args.flags.at("work-dir")
                                                : "xcv-coordinate";
  copts.epoch_seconds = FlagDouble(args, "rebalance-epoch", 0.0);
  copts.lease_seconds = FlagDouble(args, "lease", copts.lease_seconds);
  copts.max_epochs =
      static_cast<int>(FlagDouble(args, "max-epochs", copts.max_epochs));
  if (const auto it = args.flags.find("nodes"); it != args.flags.end()) {
    copts.ssh_hosts = SplitCommas(it->second);
    XCV_CHECK_MSG(!copts.ssh_hosts.empty(),
                  "--nodes needs at least one host");
  }
  copts.attrs.max_retries = static_cast<int>(
      FlagDouble(args, "max-retries", copts.attrs.max_retries));
  copts.attrs.preemptible_tries = static_cast<int>(
      FlagDouble(args, "preemptible", copts.attrs.preemptible_tries));
  copts.attrs.quarantine_after = static_cast<int>(
      FlagDouble(args, "quarantine-after", copts.attrs.quarantine_after));
  copts.attrs.launch_timeout_s =
      FlagDouble(args, "launch-timeout", copts.attrs.launch_timeout_s);
  XCV_CHECK_MSG(copts.attrs.max_retries >= 0 &&
                    copts.attrs.preemptible_tries >= 0 &&
                    copts.attrs.quarantine_after >= 1,
                "coordinate: --max-retries/--preemptible must be >= 0 and "
                "--quarantine-after >= 1");
  if (const auto it = args.flags.find("cache-dir"); it != args.flags.end())
    copts.cache_dir = it->second;
  if (const auto it = args.flags.find("xcv-bin"); it != args.flags.end())
    copts.xcv_binary = it->second;
  copts.quiet = args.flags.count("quiet") > 0;

  // Chaos hooks: --kill-node=K@S and --fault-node=K:SPEC.
  if (const auto it = args.flags.find("kill-node"); it != args.flags.end()) {
    const std::string& v = it->second;
    const auto at = v.find('@');
    copts.kill_node = std::atoi(v.c_str());
    if (at != std::string::npos)
      copts.kill_after_seconds = std::strtod(v.c_str() + at + 1, nullptr);
    XCV_CHECK_MSG(copts.kill_node >= 0 && copts.kill_after_seconds >= 0.0,
                  "--kill-node needs K@SECONDS, got '" << v << "'");
  }
  if (const auto it = args.flags.find("fault-node"); it != args.flags.end()) {
    const std::string& v = it->second;
    const auto colon = v.find(':');
    XCV_CHECK_MSG(colon != std::string::npos && colon > 0,
                  "--fault-node needs K:FAULT_SPEC, got '" << v << "'");
    copts.fault_node = std::atoi(v.substr(0, colon).c_str());
    copts.fault_spec = v.substr(colon + 1);
    // Validate the spec here, in the coordinator's process, so a typo is a
    // usage error now rather than K crashed children later. The arming is
    // scoped to the designated child's environment.
    support::fault::ArmFromSpec(copts.fault_spec);
    support::fault::Disarm();
  }

  // The coordinator owns one campaign checkpoint file. Seed it from the
  // flags (an existing --checkpoint, or a fresh matrix) exactly like shard.
  std::error_code ec;
  std::filesystem::create_directories(copts.work_dir, ec);
  XCV_CHECK_MSG(!ec, "cannot create --work-dir '" << copts.work_dir
                                                  << "': " << ec.message());
  campaign::Checkpoint cp = CheckpointFromFlagsOrFile(args);
  copts.checkpoint_path = args.flags.count("checkpoint")
                              ? args.flags.at("checkpoint")
                              : copts.work_dir + "/campaign.json";
  campaign::WriteCheckpointFile(copts.checkpoint_path, cp.options, cp.pairs,
                                cp.cancelled);

  const shard::CoordinatorResult result = shard::RunCoordinator(copts);
  if (!copts.quiet) {
    std::fprintf(stderr,
                 "[xcv coordinate] %s: %d epoch(s), %d launch(es), %d "
                 "kill(s), %d recover(ies), %zu fragment(s) backfilled\n",
                 result.converged ? "converged" : "gave up", result.epochs,
                 result.launches, result.kills, result.recoveries,
                 result.backfilled_fragments);
    std::fprintf(stderr,
                 "[xcv coordinate] %d retr%s, %d preemption(s), %d "
                 "stall(s), %d launch failure(s), %zu node(s) quarantined\n",
                 result.retries, result.retries == 1 ? "y" : "ies",
                 result.preemptions, result.stalls, result.launch_failures,
                 result.quarantined.size());
    for (const std::string& node : result.quarantined)
      std::fprintf(stderr, "[xcv coordinate] quarantined: %s\n",
                   node.c_str());
  }
  if (!result.converged) {
    std::fprintf(stderr, "xcv coordinate: %s\n", result.error.c_str());
    return 1;
  }

  // Render the converged campaign exactly like a single-node run would.
  campaign::Checkpoint final_cp =
      campaign::LoadCheckpointFile(copts.checkpoint_path);
  const std::string format =
      args.flags.count("format") ? args.flags.at("format") : "table";
  if (format == "json") {
    std::printf("%s", campaign::CheckpointToJson(final_cp.options,
                                                 final_cp.pairs,
                                                 final_cp.cancelled)
                          .c_str());
  } else {
    CampaignResult render;
    render.pairs = std::move(final_cp.pairs);
    render.cancelled = final_cp.cancelled;
    if (format == "csv") {
      PrintCsv(render);
    } else {
      PrintTable(render);
    }
  }
  return 0;
}

int CmdMerge(const ParsedArgs& args) {
  if (args.positionals.empty()) {
    std::fprintf(stderr,
                 "xcv merge: needs at least one shard checkpoint file\n");
    return 2;
  }
  const bool skip_corrupt = args.flags.count("skip-corrupt") > 0;
  std::vector<campaign::Checkpoint> inputs;
  inputs.reserve(args.positionals.size());
  for (const std::string& path : args.positionals) {
    try {
      inputs.push_back(campaign::LoadCheckpointFile(path));
    } catch (const InternalError& e) {
      // Re-raise with the offending file named: a corrupt shard must be a
      // clear diagnostic, not a stack trace. With --skip-corrupt the
      // survivors still merge (the skipped shard's pairs go missing, which
      // the coverage warnings below surface).
      if (!skip_corrupt)
        throw InternalError("shard checkpoint '" + path +
                            "' is unreadable or malformed: " + e.what());
      std::fprintf(stderr, "[xcv] WARNING: skipping shard '%s': %s\n",
                   path.c_str(), e.what());
    }
  }
  // Zero readable inputs must be a loud, named failure — not an empty
  // report quietly overwriting last night's good merge.
  XCV_CHECK_MSG(!inputs.empty(),
                "merge: none of the "
                    << args.positionals.size()
                    << " input file(s) could be read — nothing to merge");

  // Usage errors must fire before any output file is written.
  XCV_CHECK_MSG(
      args.flags.count("cache-out") == 0 || args.flags.count("cache") > 0,
      "--cache-out needs --cache=FILE,... (no shard caches to union)");

  shard::MergeStats stats;
  campaign::Checkpoint merged =
      shard::MergeCheckpoints(std::move(inputs), &stats);
  XCV_CHECK_MSG(!merged.pairs.empty(),
                "merge: the readable inputs contain zero pairs — refusing "
                "to write an empty campaign");
  if (stats.mixed_partitions)
    std::fprintf(stderr,
                 "[xcv] note: inputs declare partitions of different sizes "
                 "(a re-sharded shard, or a stale file swept up by the "
                 "glob?) — partition coverage cannot be checked; actual "
                 "overlaps, if any, are reported below\n");
  if (!stats.missing_shards.empty() || stats.origin_gaps) {
    std::string slots;
    for (int i : stats.missing_shards)
      slots += (slots.empty() ? "" : ",") + std::to_string(i);
    std::fprintf(stderr,
                 "[xcv] WARNING: this union does not cover the whole "
                 "campaign%s%s — pairs are missing from the merged report; "
                 "merge the remaining shards in later (provenance is "
                 "preserved)\n",
                 slots.empty() ? "" : ": missing shard slot(s) ",
                 slots.c_str());
  }
  if (stats.options_mismatch)
    std::fprintf(stderr,
                 "[xcv] WARNING: shards were run with different "
                 "verdict-affecting options (a node overrode solver flags "
                 "on resume?) — the merged report is not comparable to a "
                 "single-node run\n");
  if (stats.duplicate_leaves > 0)
    std::fprintf(stderr,
                 "[xcv] WARNING: inputs overlap (%zu boxes decided by more "
                 "than one input) — verdicts and leaves stay sound, but "
                 "witness and counter columns double-count the overlapped "
                 "work\n",
                 stats.duplicate_leaves);
  if (const auto it = args.flags.find("out"); it != args.flags.end())
    campaign::WriteCheckpointFile(it->second, merged.options, merged.pairs,
                                  merged.cancelled);

  bool cache_merged = false;
  shard::CacheMergeStats cache_stats;
  std::string cache_out;
  if (const auto it = args.flags.find("cache"); it != args.flags.end()) {
    cache::VerdictCache cache_union;
    cache_stats = shard::MergeCacheFiles(SplitCommas(it->second),
                                         &cache_union);
    cache_out = args.flags.count("cache-out") ? args.flags.at("cache-out")
                                              : "merged-cache.json";
    cache_union.Save(cache_out);
    cache_merged = true;
  }

  // Counts for the stderr summary, taken before the pair vector is moved
  // into the render path (reports can hold very large frontiers).
  const std::size_t pair_count = merged.pairs.size();
  std::size_t open_boxes = 0, undone = 0;
  for (const PairState& p : merged.pairs) {
    open_boxes += p.open.size();
    if (p.applicable && !p.done) ++undone;
  }

  const std::string format =
      args.flags.count("format") ? args.flags.at("format") : "table";
  if (format == "json") {
    std::printf("%s", campaign::CheckpointToJson(merged.options, merged.pairs,
                                                 merged.cancelled)
                          .c_str());
  } else {
    CampaignResult result;
    result.pairs = std::move(merged.pairs);
    result.cancelled = merged.cancelled;
    if (format == "csv") {
      PrintCsv(result);
    } else {
      PrintTable(result);
    }
  }

  if (args.flags.count("quiet") == 0) {
    std::fprintf(stderr,
                 "[xcv] merged %zu shards: %zu pairs from %zu fragments, "
                 "%zu duplicate leaves dropped, %zu open boxes deduped\n",
                 stats.shards, pair_count, stats.pair_fragments,
                 stats.duplicate_leaves, stats.open_dropped);
    if (undone > 0)
      std::fprintf(stderr,
                   "[xcv] %zu pairs still open (%zu boxes) — the merged "
                   "checkpoint is resumable\n",
                   undone, open_boxes);
    if (cache_merged)
      std::fprintf(
          stderr,
          "[xcv] cache union -> %s: %llu entries (%llu cross-shard "
          "duplicates, %llu conflicts dropped, %zu files, %zu unreadable)\n",
          cache_out.c_str(),
          static_cast<unsigned long long>(cache_stats.added),
          static_cast<unsigned long long>(cache_stats.duplicates),
          static_cast<unsigned long long>(cache_stats.conflicts_dropped),
          cache_stats.files_loaded, cache_stats.files_failed);
  }
  return 0;
}

int CmdCacheStats(const ParsedArgs& args) {
  if (args.positionals.size() != 1) {
    std::fprintf(stderr, "xcv cache-stats: needs exactly one cache file\n");
    return 2;
  }
  const std::string& path = args.positionals.front();
  cache::VerdictCache cache;
  XCV_CHECK_MSG(cache.Load(path), "cannot load verdict cache '"
                                      << path << "' (missing or corrupt)");
  std::size_t unsat = 0, delta_sat = 0, timeout = 0;
  std::unordered_set<std::uint64_t> scopes;
  cache.ForEach([&](std::uint64_t scope, std::span<const Interval>,
                    const cache::CachedVerdict& verdict) {
    scopes.insert(scope);
    switch (verdict.kind) {
      case cache::CachedKind::kUnsat: ++unsat; break;
      case cache::CachedKind::kDeltaSat: ++delta_sat; break;
      case cache::CachedKind::kTimeout: ++timeout; break;
    }
  });
  std::printf("verdict cache %s\n", path.c_str());
  std::printf("  entries:   %zu\n", cache.size());
  std::printf("  scopes:    %zu\n", scopes.size());
  std::printf("  unsat:     %zu\n", unsat);
  std::printf("  delta_sat: %zu\n", delta_sat);
  std::printf("  timeout:   %zu\n", timeout);
  return 0;
}

int CmdList() {
  std::printf("Functionals (paper Table I columns):\n");
  for (const Functional& f : functionals::PaperFunctionals())
    std::printf("  %-9s %-9s %s\n", f.name.c_str(),
                functionals::FamilyName(f.family).c_str(),
                functionals::DesignName(f.design).c_str());
  std::printf("Extensions:\n");
  for (const Functional& f : functionals::ExtensionFunctionals())
    std::printf("  %-9s %-9s %s\n", f.name.c_str(),
                functionals::FamilyName(f.family).c_str(),
                functionals::DesignName(f.design).c_str());
  std::printf("Conditions (paper Table I rows):\n");
  for (const ConditionInfo& c : conditions::AllConditions())
    std::printf("  %-4s %s\n", c.short_id.c_str(), c.name.c_str());
  return 0;
}

int CmdInfo() {
  std::printf("SIMD dispatch (see src/support/simd.h):\n");
  std::printf("  %-8s %-9s %-10s %-7s %s\n", "tier", "compiled", "supported",
              "active", "flags");
  const simd::Tier active = simd::ActiveTier();
  for (int ti = 0; ti < simd::kNumTiers; ++ti) {
    const auto tier = static_cast<simd::Tier>(ti);
    const bool compiled = simd::TierCompiled(tier);
    const bool supported = simd::TierSupported(tier);
    const simd::Kernels* k = simd::KernelsFor(tier);
    std::printf("  %-8s %-9s %-10s %-7s %s\n", simd::TierName(tier),
                compiled ? "yes" : "no", supported ? "yes" : "no",
                tier == active ? "*" : "", k != nullptr ? k->flags : "-");
  }
  const std::string& env = simd::EnvOverride();
  if (env.empty())
    std::printf("XCV_SIMD: (unset — CPUID picked %s)\n",
                simd::TierName(simd::BestSupportedTier()));
  else
    std::printf("XCV_SIMD: %s\n", env.c_str());
  std::printf(
      "All tiers produce bit-identical interval endpoints; the choice only\n"
      "affects speed. Override with XCV_SIMD=scalar|sse2|avx2|avx512.\n");
  std::printf("\nRegistered fault points (--faults / XCV_FAULTS):\n");
  std::printf("  %-38s %-12s %s\n", "point", "arg", "effect");
  for (const support::fault::PointInfo& p :
       support::fault::RegisteredPoints())
    std::printf("  %-38s %-12s %s\n", p.name, p.arg[0] ? p.arg : "-",
                p.help);
  std::printf(
      "transport.* points also accept a .<node-name> suffix (e.g.\n"
      "transport.preempt.local-0@1) to target one node of a fleet.\n");
  return 0;
}

}  // namespace

std::vector<const ConditionInfo*> ParseConditionList(const std::string& spec) {
  const auto& all = conditions::AllConditions();
  std::vector<bool> selected(all.size(), false);
  // Numeric EC index of a validated condition id ("EC4" -> 4).
  auto number_of = [&](const std::string& id) -> int {
    const ConditionInfo* info = conditions::FindCondition(id);
    XCV_CHECK_MSG(info != nullptr, "unknown condition '" << id << "'");
    return std::atoi(info->short_id.c_str() + 2);
  };
  auto index_of = [&](const std::string& id) -> std::size_t {
    const int n = number_of(id);
    for (std::size_t i = 0; i < all.size(); ++i)
      if (std::atoi(all[i].short_id.c_str() + 2) == n) return i;
    return 0;  // unreachable: FindCondition returns entries of `all`
  };
  for (const std::string& token : SplitCommas(spec)) {
    if (ToLower(token) == "all") {
      selected.assign(all.size(), true);
      continue;
    }
    std::string::size_type dots = token.find("..");
    std::size_t sep_len = 2;
    if (dots == std::string::npos) {
      dots = token.find('-');
      sep_len = 1;
    }
    if (dots != std::string::npos) {
      // Ranges are numeric: EC1..EC7 selects every EC in [1, 7] no matter
      // where it sits in Table I's row order.
      const int lo = number_of(token.substr(0, dots));
      const int hi = number_of(token.substr(dots + sep_len));
      XCV_CHECK_MSG(lo <= hi, "empty condition range '" << token << "'");
      for (std::size_t i = 0; i < all.size(); ++i) {
        const int n = std::atoi(all[i].short_id.c_str() + 2);
        if (lo <= n && n <= hi) selected[i] = true;
      }
    } else {
      selected[index_of(token)] = true;
    }
  }
  std::vector<const ConditionInfo*> out;
  for (std::size_t i = 0; i < all.size(); ++i)
    if (selected[i]) out.push_back(&all[i]);
  XCV_CHECK_MSG(!out.empty(), "condition spec '" << spec
                                                 << "' selects nothing");
  return out;
}

std::vector<const Functional*> ParseFunctionalList(const std::string& spec) {
  std::vector<const Functional*> universe;
  for (const Functional& f : functionals::PaperFunctionals())
    universe.push_back(&f);
  for (const Functional& f : functionals::ExtensionFunctionals())
    universe.push_back(&f);

  std::vector<bool> selected(universe.size(), false);
  for (const std::string& raw : SplitCommas(spec)) {
    const std::string token = ToLower(raw);
    if (token == "all") {
      // "all" = the five paper DFAs; extensions are opt-in by name.
      for (const Functional& f : functionals::PaperFunctionals())
        for (std::size_t i = 0; i < universe.size(); ++i)
          if (universe[i] == &f) selected[i] = true;
      continue;
    }
    std::optional<functionals::Family> family;
    if (token == "lda") family = functionals::Family::kLda;
    if (token == "gga") family = functionals::Family::kGga;
    if (token == "mgga" || token == "meta-gga" || token == "metagga")
      family = functionals::Family::kMetaGga;
    if (family.has_value()) {
      bool any = false;
      for (std::size_t i = 0; i < universe.size(); ++i) {
        if (universe[i]->family == *family) {
          selected[i] = true;
          any = true;
        }
      }
      XCV_CHECK_MSG(any, "no functional of family '" << raw << "'");
      continue;
    }
    const Functional* f = functionals::FindFunctional(raw);
    XCV_CHECK_MSG(f != nullptr, "unknown functional '" << raw << "'");
    for (std::size_t i = 0; i < universe.size(); ++i)
      if (universe[i] == f) selected[i] = true;
  }
  std::vector<const Functional*> out;
  for (std::size_t i = 0; i < universe.size(); ++i)
    if (selected[i]) out.push_back(universe[i]);
  XCV_CHECK_MSG(!out.empty(), "functional spec '" << spec
                                                  << "' selects nothing");
  return out;
}

int Main(int argc, const char* const* argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.has_value()) return 2;
  try {
    // Fault injection arms before any command touches a file. Disarmed
    // (the overwhelmingly common case) this is one relaxed atomic load per
    // fault point — no measurable cost on any hot path.
    support::fault::ArmFromEnv();
    if (const auto it = args->flags.find("faults"); it != args->flags.end())
      support::fault::ArmFromSpec(it->second);

    if (args->command == "verify") return CmdVerify(*args);
    if (args->command == "resume") return CmdResume(*args);
    if (args->command == "shard") return CmdShard(*args);
    if (args->command == "coordinate") return CmdCoordinate(*args);
    if (args->command == "merge") return CmdMerge(*args);
    if (args->command == "cache-stats") return CmdCacheStats(*args);
    if (args->command == "list") {
      if (RejectPositionals(*args)) return 2;
      return CmdList();
    }
    if (args->command == "info") {
      if (RejectPositionals(*args)) return 2;
      return CmdInfo();
    }
    if (args->command == "help" || args->command == "--help") {
      if (RejectPositionals(*args)) return 2;
      std::printf("%s", kUsage);
      return 0;
    }
    std::fprintf(stderr, "xcv: unknown command '%s'\n%s",
                 args->command.c_str(), kUsage);
    return 2;
  } catch (const InternalError& e) {
    std::fprintf(stderr, "xcv: %s\n", e.what());
    return 2;
  }
}

}  // namespace xcv::cli
