#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/serialize.h"
#include "report/tables.h"
#include "support/check.h"
#include "support/strings.h"
#include "verifier/region.h"

namespace xcv::cli {

namespace {

using campaign::Campaign;
using campaign::CampaignOptions;
using campaign::CampaignResult;
using campaign::PairState;
using conditions::ConditionInfo;
using functionals::Functional;

constexpr const char* kUsage = R"(xcv — exact-condition verification campaigns

Usage:
  xcv verify [options]     Run a (functional x condition) verification matrix
  xcv resume [options]     Continue a campaign from --checkpoint
  xcv list                 List known functionals and conditions
  xcv help                 Show this help

Options (verify/resume):
  --functionals=SPEC   Comma list of functionals, family selectors (lda, gga,
                       mgga) or "all" (the five paper DFAs).      [all]
  --conditions=SPEC    Comma list of conditions, ranges (EC1..EC4) or "all".
                                                                  [all]
  --threads=N          Worker cap on the shared scheduler.        [1]
  --budget-seconds=S   Processing-time budget per pair; 0 = unlimited. [10]
  --split-threshold=T  Algorithm 1 split threshold t.             [0.3125]
  --solver-nodes=N     Per-solver-call node budget.               [30000]
  --delta=D            Solver precision delta.                    [0.001]
  --wave-width=K       Sibling boxes per batched interval sweep in the
                       solver (1 = scalar; results are identical at any
                       width, only the speed changes).            [8]
  --frontier=S         Frontier order: widest | suspect | fifo.   [widest]
  --checkpoint=PATH    Write checkpoints here (after every completed pair,
                       on Ctrl-C, and at the end); resume reads it.
  --cache=PATH         Persistent verdict cache: load it before the run (a
                       missing or corrupt file starts cold), record every
                       decided box, write it back at the end. Repeated
                       campaigns replay cached verdicts instead of solving;
                       reports are byte-identical either way. The XCV_CACHE
                       environment variable supplies a default path.
  --cache-readonly     Consult --cache but never write it back.
  --format=F           Final output: table | json | csv.          [table]
  --quiet              No per-pair progress on stderr.

Exit codes: 0 success, 2 usage error, 130 cancelled (checkpoint saved).
)";

// Signal handler target: only an atomic flag is touched in the handler.
Campaign* volatile g_campaign = nullptr;

void HandleSignal(int) {
  Campaign* c = g_campaign;
  if (c != nullptr) c->RequestCancel();
}

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;
};

std::optional<ParsedArgs> ParseArgs(int argc, const char* const* argv) {
  ParsedArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string key = arg.substr(2), value = "true";
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      }
      args.flags[key] = value;
    } else if (args.command.empty()) {
      args.command = arg;
    } else {
      std::fprintf(stderr, "xcv: unexpected argument '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (args.command.empty()) args.command = "help";
  return args;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string token;
  for (char c : s) {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

double FlagDouble(const ParsedArgs& args, const std::string& key,
                  double fallback) {
  const auto it = args.flags.find(key);
  if (it == args.flags.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  XCV_CHECK_MSG(end != it->second.c_str() && *end == '\0' && v >= 0.0,
                "--" << key << " needs a non-negative number, got '"
                     << it->second << "'");
  return v;
}

CampaignOptions OptionsFromFlags(const ParsedArgs& args,
                                 const CampaignOptions& base) {
  CampaignOptions o = base;
  o.num_threads = static_cast<int>(FlagDouble(args, "threads", o.num_threads));
  XCV_CHECK_MSG(o.num_threads >= 1, "--threads must be at least 1");
  const double budget = FlagDouble(args, "budget-seconds",
                                   o.verifier.total_time_budget_seconds);
  // 0 means unlimited on the command line.
  o.verifier.total_time_budget_seconds =
      budget > 0.0 ? budget : std::numeric_limits<double>::infinity();
  o.verifier.split_threshold =
      FlagDouble(args, "split-threshold", o.verifier.split_threshold);
  o.verifier.solver.max_nodes = static_cast<std::uint64_t>(
      FlagDouble(args, "solver-nodes",
                 static_cast<double>(o.verifier.solver.max_nodes)));
  o.verifier.solver.delta = FlagDouble(args, "delta", o.verifier.solver.delta);
  o.verifier.solver.wave_width = static_cast<int>(
      FlagDouble(args, "wave-width",
                 static_cast<double>(o.verifier.solver.wave_width)));
  XCV_CHECK_MSG(o.verifier.solver.wave_width >= 1,
                "--wave-width must be at least 1");
  if (const auto it = args.flags.find("frontier"); it != args.flags.end())
    o.verifier.frontier = campaign::FrontierFromToken(ToLower(it->second));
  if (const auto it = args.flags.find("checkpoint"); it != args.flags.end())
    o.checkpoint_path = it->second;
  if (const auto it = args.flags.find("cache"); it != args.flags.end()) {
    o.cache_path = it->second;
  } else if (const char* env = std::getenv("XCV_CACHE");
             env != nullptr && env[0] != '\0') {
    o.cache_path = env;
  }
  if (args.flags.count("cache-readonly") > 0) {
    XCV_CHECK_MSG(!o.cache_path.empty(),
                  "--cache-readonly needs --cache=PATH (or XCV_CACHE)");
    o.cache_readonly = true;
  }
  o.verifier.num_threads = o.num_threads;
  return o;
}

CampaignOptions DefaultOptions() {
  CampaignOptions o;
  o.verifier.split_threshold = 0.3125;
  o.verifier.solver.max_nodes = 30'000;
  o.verifier.solver.delta = 1e-3;
  o.verifier.solver.time_budget_seconds = 0.5;
  o.verifier.solver.max_invalid_models = 512;
  o.verifier.total_time_budget_seconds = 10.0;
  return o;
}

void PrintCsv(const CampaignResult& result) {
  // Columns 1–11 (through witnesses) are deterministic for a budget-free
  // run configuration — byte-identical across thread counts, wave widths,
  // and cache states; the cache/timing columns after them are run-local.
  std::printf(
      "functional,condition,applicable,done,verdict,verified_frac,"
      "counterexample_frac,inconclusive_frac,timeout_frac,leaves,witnesses,"
      "solver_calls,solver_timeouts,cache_hits,cache_misses,cache_rejected,"
      "seconds\n");
  using verifier::RegionStatus;
  for (const PairState& p : result.pairs) {
    std::printf(
        "%s,%s,%d,%d,%s,%.6f,%.6f,%.6f,%.6f,%zu,%zu,%llu,%llu,%llu,%llu,"
        "%llu,%.3f\n",
        p.functional.c_str(), p.condition.c_str(), p.applicable ? 1 : 0,
        p.done ? 1 : 0, campaign::VerdictToken(p.verdict).c_str(),
        p.report.VolumeFraction(RegionStatus::kVerified),
        p.report.VolumeFraction(RegionStatus::kCounterexample),
        p.report.VolumeFraction(RegionStatus::kInconclusive),
        p.report.VolumeFraction(RegionStatus::kTimeout),
        p.report.leaves.size(), p.report.witnesses.size(),
        static_cast<unsigned long long>(p.report.solver_calls),
        static_cast<unsigned long long>(p.report.solver_timeouts),
        static_cast<unsigned long long>(p.report.cache_hits),
        static_cast<unsigned long long>(p.report.cache_misses),
        static_cast<unsigned long long>(p.report.cache_rejected),
        p.seconds);
  }
}

void PrintTable(const CampaignResult& result) {
  // Recover the row/column structure from the pair list (works for both
  // fresh matrices and resumed subsets).
  std::vector<std::string> conds, funcs;
  for (const PairState& p : result.pairs) {
    if (std::find(conds.begin(), conds.end(), p.condition) == conds.end())
      conds.push_back(p.condition);
    if (std::find(funcs.begin(), funcs.end(), p.functional) == funcs.end())
      funcs.push_back(p.functional);
  }
  std::vector<std::vector<report::VerdictCell>> cells(
      conds.size(),
      std::vector<report::VerdictCell>(
          funcs.size(), {verifier::Verdict::kNotApplicable}));
  for (const PairState& p : result.pairs) {
    const auto r = std::find(conds.begin(), conds.end(), p.condition) -
                   conds.begin();
    const auto c = std::find(funcs.begin(), funcs.end(), p.functional) -
                   funcs.begin();
    cells[r][c] = {p.verdict};
  }
  std::vector<std::string> row_labels;
  for (const std::string& c : conds) {
    const ConditionInfo* info = conditions::FindCondition(c);
    row_labels.push_back(info != nullptr ? info->name : c);
  }
  std::printf("%s\n", report::RenderTable1(row_labels, funcs, cells).c_str());

  std::printf("Per-pair detail (fractions of domain volume):\n");
  std::printf("%-10s %-9s %5s %8s %8s %8s %8s %6s %9s\n", "condition", "DFA",
              "done", "verified", "counter", "inconcl", "timeout", "calls",
              "secs");
  using verifier::RegionStatus;
  for (const PairState& p : result.pairs) {
    if (!p.applicable) continue;
    std::printf("%-10s %-9s %5s %8.3f %8.3f %8.3f %8.3f %6llu %9.2f\n",
                p.condition.c_str(), p.functional.c_str(),
                p.done ? "yes" : "NO",
                p.report.VolumeFraction(RegionStatus::kVerified),
                p.report.VolumeFraction(RegionStatus::kCounterexample),
                p.report.VolumeFraction(RegionStatus::kInconclusive),
                p.report.VolumeFraction(RegionStatus::kTimeout),
                static_cast<unsigned long long>(p.report.solver_calls),
                p.seconds);
  }
}

int RunCampaign(Campaign& campaign, const CampaignOptions& options,
                const std::string& format, bool quiet) {
  g_campaign = &campaign;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  Campaign::ProgressFn progress;
  if (!quiet) {
    progress = [](const PairState& p, std::size_t completed,
                  std::size_t total) {
      std::fprintf(stderr, "[xcv] %zu/%zu %s x %s: %s (%zu leaves, %llu "
                           "calls, %.2fs)\n",
                   completed, total, p.functional.c_str(),
                   p.condition.c_str(),
                   verifier::VerdictName(p.verdict).c_str(),
                   p.report.leaves.size(),
                   static_cast<unsigned long long>(p.report.solver_calls),
                   p.seconds);
    };
  }

  const CampaignResult result = campaign.Run(progress);
  g_campaign = nullptr;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  if (format == "json") {
    std::printf("%s", campaign::CheckpointToJson(options, result.pairs,
                                                 result.cancelled)
                          .c_str());
  } else if (format == "csv") {
    PrintCsv(result);
  } else {
    PrintTable(result);
    if (!options.cache_path.empty()) {
      std::printf(
          "Verdict cache (%s, %s): %llu hits, %llu misses, %llu rejected; "
          "%llu entries%s\n",
          options.cache_path.c_str(),
          result.cache_was_warm ? "warm" : "cold",
          static_cast<unsigned long long>(result.CacheHits()),
          static_cast<unsigned long long>(result.CacheMisses()),
          static_cast<unsigned long long>(result.CacheRejected()),
          static_cast<unsigned long long>(result.cache_entries),
          options.cache_readonly ? " (read-only)" : "");
    }
  }

  if (result.cancelled) {
    std::fprintf(stderr, "[xcv] cancelled: %zu/%zu pairs complete%s\n",
                 result.CompletedCount(), result.pairs.size(),
                 options.checkpoint_path.empty()
                     ? ""
                     : ", checkpoint saved — rerun with `xcv resume`");
    return 130;
  }
  return 0;
}

int CmdVerify(const ParsedArgs& args) {
  const CampaignOptions options = OptionsFromFlags(args, DefaultOptions());
  const auto funcs = ParseFunctionalList(
      args.flags.count("functionals") ? args.flags.at("functionals") : "all");
  const auto conds = ParseConditionList(
      args.flags.count("conditions") ? args.flags.at("conditions") : "all");

  Campaign campaign(options);
  for (const ConditionInfo* cond : conds)
    for (const Functional* f : funcs) campaign.Add(*f, *cond);

  const std::string format =
      args.flags.count("format") ? args.flags.at("format") : "table";
  const bool quiet = args.flags.count("quiet") > 0;
  if (!quiet)
    std::fprintf(stderr,
                 "[xcv] %zu pairs (%zu functionals x %zu conditions), "
                 "%d thread(s)\n",
                 campaign.PairCount(), funcs.size(), conds.size(),
                 options.num_threads);
  return RunCampaign(campaign, options, format, quiet);
}

int CmdResume(const ParsedArgs& args) {
  const auto it = args.flags.find("checkpoint");
  if (it == args.flags.end()) {
    std::fprintf(stderr, "xcv resume: --checkpoint=PATH is required\n");
    return 2;
  }
  campaign::Checkpoint cp = campaign::LoadCheckpointFile(it->second);
  // Flags override the checkpointed run configuration (e.g. more threads).
  CampaignOptions options = OptionsFromFlags(args, cp.options);
  if (options.checkpoint_path.empty()) options.checkpoint_path = it->second;

  Campaign campaign(options);
  std::size_t remaining = 0;
  for (PairState& p : cp.pairs) {
    if (!p.done) ++remaining;
    campaign.Restore(std::move(p));
  }
  const std::string format =
      args.flags.count("format") ? args.flags.at("format") : "table";
  const bool quiet = args.flags.count("quiet") > 0;
  if (!quiet)
    std::fprintf(stderr, "[xcv] resuming %s: %zu of %zu pairs remaining\n",
                 it->second.c_str(), remaining, cp.pairs.size());
  return RunCampaign(campaign, options, format, quiet);
}

int CmdList() {
  std::printf("Functionals (paper Table I columns):\n");
  for (const Functional& f : functionals::PaperFunctionals())
    std::printf("  %-9s %-9s %s\n", f.name.c_str(),
                functionals::FamilyName(f.family).c_str(),
                functionals::DesignName(f.design).c_str());
  std::printf("Extensions:\n");
  for (const Functional& f : functionals::ExtensionFunctionals())
    std::printf("  %-9s %-9s %s\n", f.name.c_str(),
                functionals::FamilyName(f.family).c_str(),
                functionals::DesignName(f.design).c_str());
  std::printf("Conditions (paper Table I rows):\n");
  for (const ConditionInfo& c : conditions::AllConditions())
    std::printf("  %-4s %s\n", c.short_id.c_str(), c.name.c_str());
  return 0;
}

}  // namespace

std::vector<const ConditionInfo*> ParseConditionList(const std::string& spec) {
  const auto& all = conditions::AllConditions();
  std::vector<bool> selected(all.size(), false);
  // Numeric EC index of a validated condition id ("EC4" -> 4).
  auto number_of = [&](const std::string& id) -> int {
    const ConditionInfo* info = conditions::FindCondition(id);
    XCV_CHECK_MSG(info != nullptr, "unknown condition '" << id << "'");
    return std::atoi(info->short_id.c_str() + 2);
  };
  auto index_of = [&](const std::string& id) -> std::size_t {
    const int n = number_of(id);
    for (std::size_t i = 0; i < all.size(); ++i)
      if (std::atoi(all[i].short_id.c_str() + 2) == n) return i;
    return 0;  // unreachable: FindCondition returns entries of `all`
  };
  for (const std::string& token : SplitCommas(spec)) {
    if (ToLower(token) == "all") {
      selected.assign(all.size(), true);
      continue;
    }
    std::string::size_type dots = token.find("..");
    std::size_t sep_len = 2;
    if (dots == std::string::npos) {
      dots = token.find('-');
      sep_len = 1;
    }
    if (dots != std::string::npos) {
      // Ranges are numeric: EC1..EC7 selects every EC in [1, 7] no matter
      // where it sits in Table I's row order.
      const int lo = number_of(token.substr(0, dots));
      const int hi = number_of(token.substr(dots + sep_len));
      XCV_CHECK_MSG(lo <= hi, "empty condition range '" << token << "'");
      for (std::size_t i = 0; i < all.size(); ++i) {
        const int n = std::atoi(all[i].short_id.c_str() + 2);
        if (lo <= n && n <= hi) selected[i] = true;
      }
    } else {
      selected[index_of(token)] = true;
    }
  }
  std::vector<const ConditionInfo*> out;
  for (std::size_t i = 0; i < all.size(); ++i)
    if (selected[i]) out.push_back(&all[i]);
  XCV_CHECK_MSG(!out.empty(), "condition spec '" << spec
                                                 << "' selects nothing");
  return out;
}

std::vector<const Functional*> ParseFunctionalList(const std::string& spec) {
  std::vector<const Functional*> universe;
  for (const Functional& f : functionals::PaperFunctionals())
    universe.push_back(&f);
  for (const Functional& f : functionals::ExtensionFunctionals())
    universe.push_back(&f);

  std::vector<bool> selected(universe.size(), false);
  for (const std::string& raw : SplitCommas(spec)) {
    const std::string token = ToLower(raw);
    if (token == "all") {
      // "all" = the five paper DFAs; extensions are opt-in by name.
      for (const Functional& f : functionals::PaperFunctionals())
        for (std::size_t i = 0; i < universe.size(); ++i)
          if (universe[i] == &f) selected[i] = true;
      continue;
    }
    std::optional<functionals::Family> family;
    if (token == "lda") family = functionals::Family::kLda;
    if (token == "gga") family = functionals::Family::kGga;
    if (token == "mgga" || token == "meta-gga" || token == "metagga")
      family = functionals::Family::kMetaGga;
    if (family.has_value()) {
      bool any = false;
      for (std::size_t i = 0; i < universe.size(); ++i) {
        if (universe[i]->family == *family) {
          selected[i] = true;
          any = true;
        }
      }
      XCV_CHECK_MSG(any, "no functional of family '" << raw << "'");
      continue;
    }
    const Functional* f = functionals::FindFunctional(raw);
    XCV_CHECK_MSG(f != nullptr, "unknown functional '" << raw << "'");
    for (std::size_t i = 0; i < universe.size(); ++i)
      if (universe[i] == f) selected[i] = true;
  }
  std::vector<const Functional*> out;
  for (std::size_t i = 0; i < universe.size(); ++i)
    if (selected[i]) out.push_back(universe[i]);
  XCV_CHECK_MSG(!out.empty(), "functional spec '" << spec
                                                  << "' selects nothing");
  return out;
}

int Main(int argc, const char* const* argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.has_value()) return 2;
  try {
    if (args->command == "verify") return CmdVerify(*args);
    if (args->command == "resume") return CmdResume(*args);
    if (args->command == "list") return CmdList();
    if (args->command == "help" || args->command == "--help") {
      std::printf("%s", kUsage);
      return 0;
    }
    std::fprintf(stderr, "xcv: unknown command '%s'\n%s",
                 args->command.c_str(), kUsage);
    return 2;
  } catch (const InternalError& e) {
    std::fprintf(stderr, "xcv: %s\n", e.what());
    return 2;
  }
}

}  // namespace xcv::cli
