// The `xcv` command-line front-end for the campaign engine.
//
//   xcv verify --functionals=scan,pbe --conditions=EC1..EC7 --threads=4 \
//              --checkpoint=run.json --format=table|json|csv
//   xcv resume --checkpoint=run.json
//   xcv shard --checkpoint=run.json --shards=3 --by=pairs|frontier
//   xcv merge shard-*.json [--cache=cache-0.json,cache-1.json,...] \
//             [-o merged.json]
//   xcv cache-stats cache.json
//   xcv list
//
// `verify` runs any subset of the paper's verification matrix on the shared
// scheduler, streams per-pair progress to stderr, writes checkpoints after
// every completed pair, and renders the verdict matrix through the report
// layer. Ctrl-C cancels cooperatively: the open frontier is checkpointed so
// `xcv resume` continues where the run stopped. `shard`/`merge` (src/shard/)
// turn one checkpoint into K independently resumable node checkpoints and
// union the results (and verdict caches) back into one report.
#pragma once

#include <string>
#include <vector>

#include "conditions/conditions.h"
#include "functionals/functional.h"

namespace xcv::cli {

/// Entry point (argv semantics). Returns the process exit code: 0 success,
/// 2 usage/config error, 130 cancelled by signal.
int Main(int argc, const char* const* argv);

/// Parses a comma-separated condition spec: short ids ("EC3"), ranges
/// ("EC1..EC4" or "EC2-EC5"), or "all". Throws xcv::InternalError on
/// unknown ids; result is deduplicated, in paper (Table I row) order.
std::vector<const conditions::ConditionInfo*> ParseConditionList(
    const std::string& spec);

/// Parses a comma-separated functional spec: registry names ("pbe",
/// "VWN_RPA"), family selectors ("lda", "gga", "mgga" — every paper
/// functional of that family), or "all" (the five paper DFAs). Throws
/// xcv::InternalError on unknown names; result is deduplicated, in paper
/// (Table I column) order first, extensions after.
std::vector<const functionals::Functional*> ParseFunctionalList(
    const std::string& spec);

}  // namespace xcv::cli
