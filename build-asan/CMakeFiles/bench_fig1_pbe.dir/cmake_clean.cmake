file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pbe.dir/bench/bench_fig1_pbe.cpp.o"
  "CMakeFiles/bench_fig1_pbe.dir/bench/bench_fig1_pbe.cpp.o.d"
  "bench_fig1_pbe"
  "bench_fig1_pbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
