# Empty compiler generated dependencies file for example_pb_vs_verifier.
# This may be replaced when dependencies are built.
