file(REMOVE_RECURSE
  "CMakeFiles/example_pb_vs_verifier.dir/examples/pb_vs_verifier.cpp.o"
  "CMakeFiles/example_pb_vs_verifier.dir/examples/pb_vs_verifier.cpp.o.d"
  "example_pb_vs_verifier"
  "example_pb_vs_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pb_vs_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
