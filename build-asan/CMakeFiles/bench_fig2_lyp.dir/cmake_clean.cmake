file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_lyp.dir/bench/bench_fig2_lyp.cpp.o"
  "CMakeFiles/bench_fig2_lyp.dir/bench/bench_fig2_lyp.cpp.o.d"
  "bench_fig2_lyp"
  "bench_fig2_lyp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lyp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
