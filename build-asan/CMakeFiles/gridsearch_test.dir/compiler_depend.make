# Empty compiler generated dependencies file for gridsearch_test.
# This may be replaced when dependencies are built.
