file(REMOVE_RECURSE
  "CMakeFiles/gridsearch_test.dir/tests/gridsearch_test.cpp.o"
  "CMakeFiles/gridsearch_test.dir/tests/gridsearch_test.cpp.o.d"
  "gridsearch_test"
  "gridsearch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsearch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
