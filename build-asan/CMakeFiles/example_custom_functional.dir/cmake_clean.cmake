file(REMOVE_RECURSE
  "CMakeFiles/example_custom_functional.dir/examples/custom_functional.cpp.o"
  "CMakeFiles/example_custom_functional.dir/examples/custom_functional.cpp.o.d"
  "example_custom_functional"
  "example_custom_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
