# Empty compiler generated dependencies file for example_custom_functional.
# This may be replaced when dependencies are built.
