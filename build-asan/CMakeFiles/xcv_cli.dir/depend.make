# Empty dependencies file for xcv_cli.
# This may be replaced when dependencies are built.
