file(REMOVE_RECURSE
  "CMakeFiles/xcv_cli.dir/apps/xcv_main.cpp.o"
  "CMakeFiles/xcv_cli.dir/apps/xcv_main.cpp.o.d"
  "xcv"
  "xcv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xcv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
