file(REMOVE_RECURSE
  "CMakeFiles/compile_test.dir/tests/compile_test.cpp.o"
  "CMakeFiles/compile_test.dir/tests/compile_test.cpp.o.d"
  "compile_test"
  "compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
