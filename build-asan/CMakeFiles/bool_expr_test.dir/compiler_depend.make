# Empty compiler generated dependencies file for bool_expr_test.
# This may be replaced when dependencies are built.
