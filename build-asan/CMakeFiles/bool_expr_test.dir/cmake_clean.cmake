file(REMOVE_RECURSE
  "CMakeFiles/bool_expr_test.dir/tests/bool_expr_test.cpp.o"
  "CMakeFiles/bool_expr_test.dir/tests/bool_expr_test.cpp.o.d"
  "bool_expr_test"
  "bool_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bool_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
