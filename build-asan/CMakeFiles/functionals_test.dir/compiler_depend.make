# Empty compiler generated dependencies file for functionals_test.
# This may be replaced when dependencies are built.
