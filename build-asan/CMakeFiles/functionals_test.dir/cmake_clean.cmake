file(REMOVE_RECURSE
  "CMakeFiles/functionals_test.dir/tests/functionals_test.cpp.o"
  "CMakeFiles/functionals_test.dir/tests/functionals_test.cpp.o.d"
  "functionals_test"
  "functionals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functionals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
