# Empty compiler generated dependencies file for interval_batch_test.
# This may be replaced when dependencies are built.
