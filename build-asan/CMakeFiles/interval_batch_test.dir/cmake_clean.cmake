file(REMOVE_RECURSE
  "CMakeFiles/interval_batch_test.dir/tests/interval_batch_test.cpp.o"
  "CMakeFiles/interval_batch_test.dir/tests/interval_batch_test.cpp.o.d"
  "interval_batch_test"
  "interval_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
