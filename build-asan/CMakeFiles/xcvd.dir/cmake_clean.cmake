file(REMOVE_RECURSE
  "CMakeFiles/xcvd.dir/apps/xcvd_main.cpp.o"
  "CMakeFiles/xcvd.dir/apps/xcvd_main.cpp.o.d"
  "xcvd"
  "xcvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xcvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
