# Empty dependencies file for xcvd.
# This may be replaced when dependencies are built.
