file(REMOVE_RECURSE
  "libxcv_bench_common.a"
)
