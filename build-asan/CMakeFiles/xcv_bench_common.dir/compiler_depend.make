# Empty compiler generated dependencies file for xcv_bench_common.
# This may be replaced when dependencies are built.
