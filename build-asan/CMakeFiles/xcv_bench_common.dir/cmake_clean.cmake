file(REMOVE_RECURSE
  "CMakeFiles/xcv_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/xcv_bench_common.dir/bench/common.cpp.o.d"
  "libxcv_bench_common.a"
  "libxcv_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xcv_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
