file(REMOVE_RECURSE
  "CMakeFiles/bench_functionals.dir/bench/bench_functionals.cpp.o"
  "CMakeFiles/bench_functionals.dir/bench/bench_functionals.cpp.o.d"
  "bench_functionals"
  "bench_functionals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functionals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
