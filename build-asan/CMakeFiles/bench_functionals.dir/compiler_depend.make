# Empty compiler generated dependencies file for bench_functionals.
# This may be replaced when dependencies are built.
