file(REMOVE_RECURSE
  "CMakeFiles/interval_test.dir/tests/interval_test.cpp.o"
  "CMakeFiles/interval_test.dir/tests/interval_test.cpp.o.d"
  "interval_test"
  "interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
