# Empty compiler generated dependencies file for bench_ablation_contractor.
# This may be replaced when dependencies are built.
