file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_contractor.dir/bench/bench_ablation_contractor.cpp.o"
  "CMakeFiles/bench_ablation_contractor.dir/bench/bench_ablation_contractor.cpp.o.d"
  "bench_ablation_contractor"
  "bench_ablation_contractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_contractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
