# Empty dependencies file for interval_backward_batch_test.
# This may be replaced when dependencies are built.
