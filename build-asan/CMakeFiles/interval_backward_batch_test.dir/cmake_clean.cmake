file(REMOVE_RECURSE
  "CMakeFiles/interval_backward_batch_test.dir/tests/interval_backward_batch_test.cpp.o"
  "CMakeFiles/interval_backward_batch_test.dir/tests/interval_backward_batch_test.cpp.o.d"
  "interval_backward_batch_test"
  "interval_backward_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_backward_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
