file(REMOVE_RECURSE
  "CMakeFiles/shard_test.dir/tests/shard_test.cpp.o"
  "CMakeFiles/shard_test.dir/tests/shard_test.cpp.o.d"
  "shard_test"
  "shard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
