
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/job_spec.cpp" "CMakeFiles/xcv.dir/src/api/job_spec.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/api/job_spec.cpp.o.d"
  "/root/repo/src/api/render.cpp" "CMakeFiles/xcv.dir/src/api/render.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/api/render.cpp.o.d"
  "/root/repo/src/cache/verdict_cache.cpp" "CMakeFiles/xcv.dir/src/cache/verdict_cache.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/cache/verdict_cache.cpp.o.d"
  "/root/repo/src/campaign/campaign.cpp" "CMakeFiles/xcv.dir/src/campaign/campaign.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/campaign/campaign.cpp.o.d"
  "/root/repo/src/campaign/serialize.cpp" "CMakeFiles/xcv.dir/src/campaign/serialize.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/campaign/serialize.cpp.o.d"
  "/root/repo/src/cli/cli.cpp" "CMakeFiles/xcv.dir/src/cli/cli.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/cli/cli.cpp.o.d"
  "/root/repo/src/conditions/conditions.cpp" "CMakeFiles/xcv.dir/src/conditions/conditions.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/conditions/conditions.cpp.o.d"
  "/root/repo/src/conditions/enhancement.cpp" "CMakeFiles/xcv.dir/src/conditions/enhancement.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/conditions/enhancement.cpp.o.d"
  "/root/repo/src/expr/bool_expr.cpp" "CMakeFiles/xcv.dir/src/expr/bool_expr.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/bool_expr.cpp.o.d"
  "/root/repo/src/expr/builder.cpp" "CMakeFiles/xcv.dir/src/expr/builder.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/builder.cpp.o.d"
  "/root/repo/src/expr/compile.cpp" "CMakeFiles/xcv.dir/src/expr/compile.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/compile.cpp.o.d"
  "/root/repo/src/expr/complexity.cpp" "CMakeFiles/xcv.dir/src/expr/complexity.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/complexity.cpp.o.d"
  "/root/repo/src/expr/derivative.cpp" "CMakeFiles/xcv.dir/src/expr/derivative.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/derivative.cpp.o.d"
  "/root/repo/src/expr/eval.cpp" "CMakeFiles/xcv.dir/src/expr/eval.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/eval.cpp.o.d"
  "/root/repo/src/expr/intern.cpp" "CMakeFiles/xcv.dir/src/expr/intern.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/intern.cpp.o.d"
  "/root/repo/src/expr/interval_backward_batch.cpp" "CMakeFiles/xcv.dir/src/expr/interval_backward_batch.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/interval_backward_batch.cpp.o.d"
  "/root/repo/src/expr/interval_batch.cpp" "CMakeFiles/xcv.dir/src/expr/interval_batch.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/interval_batch.cpp.o.d"
  "/root/repo/src/expr/interval_eval.cpp" "CMakeFiles/xcv.dir/src/expr/interval_eval.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/interval_eval.cpp.o.d"
  "/root/repo/src/expr/optimize.cpp" "CMakeFiles/xcv.dir/src/expr/optimize.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/optimize.cpp.o.d"
  "/root/repo/src/expr/printer.cpp" "CMakeFiles/xcv.dir/src/expr/printer.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/printer.cpp.o.d"
  "/root/repo/src/expr/substitute.cpp" "CMakeFiles/xcv.dir/src/expr/substitute.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/expr/substitute.cpp.o.d"
  "/root/repo/src/functionals/am05.cpp" "CMakeFiles/xcv.dir/src/functionals/am05.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/functionals/am05.cpp.o.d"
  "/root/repo/src/functionals/functional.cpp" "CMakeFiles/xcv.dir/src/functionals/functional.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/functionals/functional.cpp.o.d"
  "/root/repo/src/functionals/lda.cpp" "CMakeFiles/xcv.dir/src/functionals/lda.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/functionals/lda.cpp.o.d"
  "/root/repo/src/functionals/lyp.cpp" "CMakeFiles/xcv.dir/src/functionals/lyp.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/functionals/lyp.cpp.o.d"
  "/root/repo/src/functionals/pbe.cpp" "CMakeFiles/xcv.dir/src/functionals/pbe.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/functionals/pbe.cpp.o.d"
  "/root/repo/src/functionals/scan.cpp" "CMakeFiles/xcv.dir/src/functionals/scan.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/functionals/scan.cpp.o.d"
  "/root/repo/src/functionals/variables.cpp" "CMakeFiles/xcv.dir/src/functionals/variables.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/functionals/variables.cpp.o.d"
  "/root/repo/src/gridsearch/grid.cpp" "CMakeFiles/xcv.dir/src/gridsearch/grid.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/gridsearch/grid.cpp.o.d"
  "/root/repo/src/gridsearch/pb_checker.cpp" "CMakeFiles/xcv.dir/src/gridsearch/pb_checker.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/gridsearch/pb_checker.cpp.o.d"
  "/root/repo/src/interval/functions.cpp" "CMakeFiles/xcv.dir/src/interval/functions.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/interval/functions.cpp.o.d"
  "/root/repo/src/interval/interval.cpp" "CMakeFiles/xcv.dir/src/interval/interval.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/interval/interval.cpp.o.d"
  "/root/repo/src/interval/inverse.cpp" "CMakeFiles/xcv.dir/src/interval/inverse.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/interval/inverse.cpp.o.d"
  "/root/repo/src/interval/lambert_w.cpp" "CMakeFiles/xcv.dir/src/interval/lambert_w.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/interval/lambert_w.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "CMakeFiles/xcv.dir/src/lang/lexer.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "CMakeFiles/xcv.dir/src/lang/parser.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/lang/parser.cpp.o.d"
  "/root/repo/src/report/ascii_plot.cpp" "CMakeFiles/xcv.dir/src/report/ascii_plot.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/report/ascii_plot.cpp.o.d"
  "/root/repo/src/report/consistency.cpp" "CMakeFiles/xcv.dir/src/report/consistency.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/report/consistency.cpp.o.d"
  "/root/repo/src/report/csv.cpp" "CMakeFiles/xcv.dir/src/report/csv.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/report/csv.cpp.o.d"
  "/root/repo/src/report/tables.cpp" "CMakeFiles/xcv.dir/src/report/tables.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/report/tables.cpp.o.d"
  "/root/repo/src/service/daemon.cpp" "CMakeFiles/xcv.dir/src/service/daemon.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/service/daemon.cpp.o.d"
  "/root/repo/src/service/http.cpp" "CMakeFiles/xcv.dir/src/service/http.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/service/http.cpp.o.d"
  "/root/repo/src/shard/coordinator.cpp" "CMakeFiles/xcv.dir/src/shard/coordinator.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/shard/coordinator.cpp.o.d"
  "/root/repo/src/shard/merge.cpp" "CMakeFiles/xcv.dir/src/shard/merge.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/shard/merge.cpp.o.d"
  "/root/repo/src/shard/partition.cpp" "CMakeFiles/xcv.dir/src/shard/partition.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/shard/partition.cpp.o.d"
  "/root/repo/src/shard/transport.cpp" "CMakeFiles/xcv.dir/src/shard/transport.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/shard/transport.cpp.o.d"
  "/root/repo/src/solver/box.cpp" "CMakeFiles/xcv.dir/src/solver/box.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/solver/box.cpp.o.d"
  "/root/repo/src/solver/contractor.cpp" "CMakeFiles/xcv.dir/src/solver/contractor.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/solver/contractor.cpp.o.d"
  "/root/repo/src/solver/icp.cpp" "CMakeFiles/xcv.dir/src/solver/icp.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/solver/icp.cpp.o.d"
  "/root/repo/src/support/fault.cpp" "CMakeFiles/xcv.dir/src/support/fault.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/fault.cpp.o.d"
  "/root/repo/src/support/io.cpp" "CMakeFiles/xcv.dir/src/support/io.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/io.cpp.o.d"
  "/root/repo/src/support/json.cpp" "CMakeFiles/xcv.dir/src/support/json.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/json.cpp.o.d"
  "/root/repo/src/support/retry.cpp" "CMakeFiles/xcv.dir/src/support/retry.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/retry.cpp.o.d"
  "/root/repo/src/support/simd.cpp" "CMakeFiles/xcv.dir/src/support/simd.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/simd.cpp.o.d"
  "/root/repo/src/support/simd_kernels_avx2.cpp" "CMakeFiles/xcv.dir/src/support/simd_kernels_avx2.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/simd_kernels_avx2.cpp.o.d"
  "/root/repo/src/support/simd_kernels_avx512.cpp" "CMakeFiles/xcv.dir/src/support/simd_kernels_avx512.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/simd_kernels_avx512.cpp.o.d"
  "/root/repo/src/support/simd_kernels_scalar.cpp" "CMakeFiles/xcv.dir/src/support/simd_kernels_scalar.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/simd_kernels_scalar.cpp.o.d"
  "/root/repo/src/support/simd_kernels_sse2.cpp" "CMakeFiles/xcv.dir/src/support/simd_kernels_sse2.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/simd_kernels_sse2.cpp.o.d"
  "/root/repo/src/support/stopwatch.cpp" "CMakeFiles/xcv.dir/src/support/stopwatch.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/stopwatch.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "CMakeFiles/xcv.dir/src/support/strings.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/strings.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/xcv.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "CMakeFiles/xcv.dir/src/support/thread_pool.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/support/thread_pool.cpp.o.d"
  "/root/repo/src/verifier/engine.cpp" "CMakeFiles/xcv.dir/src/verifier/engine.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/verifier/engine.cpp.o.d"
  "/root/repo/src/verifier/region.cpp" "CMakeFiles/xcv.dir/src/verifier/region.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/verifier/region.cpp.o.d"
  "/root/repo/src/verifier/verifier.cpp" "CMakeFiles/xcv.dir/src/verifier/verifier.cpp.o" "gcc" "CMakeFiles/xcv.dir/src/verifier/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
