# Empty compiler generated dependencies file for xcv.
# This may be replaced when dependencies are built.
