file(REMOVE_RECURSE
  "libxcv.a"
)
