# Empty compiler generated dependencies file for example_scan_timeout_study.
# This may be replaced when dependencies are built.
