file(REMOVE_RECURSE
  "CMakeFiles/example_scan_timeout_study.dir/examples/scan_timeout_study.cpp.o"
  "CMakeFiles/example_scan_timeout_study.dir/examples/scan_timeout_study.cpp.o.d"
  "example_scan_timeout_study"
  "example_scan_timeout_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scan_timeout_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
