file(REMOVE_RECURSE
  "CMakeFiles/example_lyp_violation_atlas.dir/examples/lyp_violation_atlas.cpp.o"
  "CMakeFiles/example_lyp_violation_atlas.dir/examples/lyp_violation_atlas.cpp.o.d"
  "example_lyp_violation_atlas"
  "example_lyp_violation_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lyp_violation_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
