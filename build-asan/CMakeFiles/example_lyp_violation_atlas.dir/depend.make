# Empty dependencies file for example_lyp_violation_atlas.
# This may be replaced when dependencies are built.
