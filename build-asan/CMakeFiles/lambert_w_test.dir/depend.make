# Empty dependencies file for lambert_w_test.
# This may be replaced when dependencies are built.
