file(REMOVE_RECURSE
  "CMakeFiles/lambert_w_test.dir/tests/lambert_w_test.cpp.o"
  "CMakeFiles/lambert_w_test.dir/tests/lambert_w_test.cpp.o.d"
  "lambert_w_test"
  "lambert_w_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambert_w_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
