file(REMOVE_RECURSE
  "CMakeFiles/icp_test.dir/tests/icp_test.cpp.o"
  "CMakeFiles/icp_test.dir/tests/icp_test.cpp.o.d"
  "icp_test"
  "icp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
