# Empty dependencies file for icp_test.
# This may be replaced when dependencies are built.
