file(REMOVE_RECURSE
  "CMakeFiles/optimize_test.dir/tests/optimize_test.cpp.o"
  "CMakeFiles/optimize_test.dir/tests/optimize_test.cpp.o.d"
  "optimize_test"
  "optimize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
