file(REMOVE_RECURSE
  "CMakeFiles/derivative_test.dir/tests/derivative_test.cpp.o"
  "CMakeFiles/derivative_test.dir/tests/derivative_test.cpp.o.d"
  "derivative_test"
  "derivative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
