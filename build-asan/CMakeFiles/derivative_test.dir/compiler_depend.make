# Empty compiler generated dependencies file for derivative_test.
# This may be replaced when dependencies are built.
