file(REMOVE_RECURSE
  "CMakeFiles/contractor_test.dir/tests/contractor_test.cpp.o"
  "CMakeFiles/contractor_test.dir/tests/contractor_test.cpp.o.d"
  "contractor_test"
  "contractor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
