# Empty compiler generated dependencies file for contractor_test.
# This may be replaced when dependencies are built.
