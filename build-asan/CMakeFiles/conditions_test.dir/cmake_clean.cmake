file(REMOVE_RECURSE
  "CMakeFiles/conditions_test.dir/tests/conditions_test.cpp.o"
  "CMakeFiles/conditions_test.dir/tests/conditions_test.cpp.o.d"
  "conditions_test"
  "conditions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
