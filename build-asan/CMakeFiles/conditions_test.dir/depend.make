# Empty dependencies file for conditions_test.
# This may be replaced when dependencies are built.
